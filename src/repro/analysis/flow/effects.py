"""Interprocedural effect inference over a join-semilattice.

Every function in the analyzed project gets an **effect summary**: a set
drawn from seven effect atoms, ordered by subset inclusion.  The bottom
element is the empty set (*pure*); ``join`` is set union; the lattice
height is finite, so the interprocedural fixpoint — a function's summary
is its *intrinsic* effects joined with the summaries of everything it
may call — terminates and is monotone (each iteration only ever adds
atoms, a property the hypothesis suite pins).

The atoms:

``reads-clock``
    A **wall-clock** read (``time.time``, ``datetime.now`` — the DET003
    set).  Monotonic readers (``time.perf_counter``,
    ``repro.observability.clock.monotonic_seconds``) are deliberately
    *not* this effect: the observability layer is the sanctioned home
    for interval timing and is audited separately (OBS001); the taint
    pass still treats monotonic *values* as clock-tainted so they can
    never reach a result or cache key.
``rng-unseeded``
    Construction of a random stream from fresh entropy or the stdlib
    global stream (``default_rng()`` with no arguments, ``random.*``,
    legacy ``numpy.random.*``).
``rng-derived``
    Construction of a stream from provided seed material
    (``derive_generator``, ``as_generator(seed)``,
    ``default_rng(seed)``).  Whether that material is *correctly*
    derived from the run's parameters is CON001/TNT002's job; the
    effect records that the function manufactures a stream at all.
``reads-env``
    ``os.environ`` / ``os.getenv`` / ``platform.*`` /
    ``socket.gethostname`` — host-dependent inputs.
``io``
    File or console I/O (``open``, ``print``, ``Path.read_text`` …).
``global-write``
    Rebinding or in-place mutation of a module-level global.
``unordered-iteration``
    Iteration over a set-typed value, whose order is not specified.
    (Python dicts iterate in insertion order, so plain dict iteration
    is *not* this effect.)

A function may pin its own summary with a structured comment on (or
directly above) its ``def`` line, mirroring ``# simlint: dim(...)``::

    def fetch(url):  # simlint: effects(io)

Declared effects are trusted boundaries: the fixpoint does not
propagate callee effects through a declared function.  ``effects(pure)``
declares the empty summary.

:func:`solve_effects` is the pure fixpoint core (property-tested
directly); :func:`compute_effects` builds the full
:class:`EffectTable` for a project, including the worker-reachable
closure used by the ``simlint effects`` subcommand and the pinned
``run.simulate`` reproducibility test.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.analysis.flow.callgraph import (
    MUTATING_METHODS,
    call_edges,
    project_worker_entries,
    reachable,
)
from repro.analysis.flow.symbols import FunctionInfo, Project

Effects = FrozenSet[str]

READS_CLOCK = "reads-clock"
RNG_UNSEEDED = "rng-unseeded"
RNG_DERIVED = "rng-derived"
READS_ENV = "reads-env"
IO = "io"
GLOBAL_WRITE = "global-write"
UNORDERED_ITERATION = "unordered-iteration"

ALL_EFFECTS: Effects = frozenset(
    {
        READS_CLOCK,
        RNG_UNSEEDED,
        RNG_DERIVED,
        READS_ENV,
        IO,
        GLOBAL_WRITE,
        UNORDERED_ITERATION,
    }
)

#: The lattice bottom: no observable effects.
PURE: Effects = frozenset()


def join(a: Effects, b: Effects) -> Effects:
    """Least upper bound of two summaries (set union)."""
    return a | b


#: Wall-clock reads (the DET003 set).  Monotonic readers excluded by
#: design — see the module docstring.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: The sole sanctioned stream-derivation helper (TNT002's anchor).
DERIVE_GENERATOR = "repro.random_utils.derive_generator"

#: Stream constructors whose seededness depends on their arguments.
SEEDABLE_RNG_FACTORIES = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "repro.random_utils.as_generator",
    }
)

ENV_CALLS = frozenset(
    {
        "os.getenv",
        "os.uname",
        "os.getpid",
        "os.cpu_count",
        "socket.gethostname",
        "sys.getdefaultencoding",
    }
)

#: Attribute reads that expose host state (``os.environ["TZ"]``).
ENV_ATTRIBUTES = frozenset({"os.environ", "sys.platform"})

IO_CALLS = frozenset({"open", "builtins.open", "print", "input"})

#: Receiver-agnostic I/O method names (``Path.read_text`` et al.).
IO_METHOD_NAMES = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: ``# simlint: effects(io, reads-env)`` declared-summary comments.
_EFFECTS_COMMENT_RE = re.compile(
    r"#\s*simlint\s*:\s*effects\s*\(([^)]*)\)"
)


def declared_effects(fn: FunctionInfo) -> Optional[Effects]:
    """The summary a ``# simlint: effects(...)`` comment pins, if any.

    Unknown atom spellings are ignored rather than fatal — a typo'd
    declaration degrades to a smaller (more alarming) summary instead
    of crashing the lint run.
    """
    lines = fn.module.ctx.lines
    for lineno in (fn.node.lineno, fn.node.lineno - 1):
        if not 1 <= lineno <= len(lines):
            continue
        match = _EFFECTS_COMMENT_RE.search(lines[lineno - 1])
        if match is None:
            continue
        tokens = [t.strip() for t in match.group(1).split(",") if t.strip()]
        if tokens == ["pure"]:
            return PURE
        return frozenset(t for t in tokens if t in ALL_EFFECTS)
    return None


def set_typed_locals(fn: FunctionInfo) -> Set[str]:
    """Local names ever bound to a set-typed value inside ``fn``."""
    names: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn.node):
            target: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                target, value = node.targets[0].id, node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                target, value = node.target.id, node.value
            if target is None or value is None:
                continue
            if target not in names and is_set_typed(value, names):
                names.add(target)
                changed = True
    return names


def is_set_typed(expr: ast.expr, set_names: Set[str]) -> bool:
    """Conservatively: does this expression evaluate to a set?"""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) and \
            expr.func.id in ("set", "frozenset"):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in set_names
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return is_set_typed(expr.left, set_names) or is_set_typed(
            expr.right, set_names
        )
    return False


def _bound_names(fn: FunctionInfo) -> Set[str]:
    """Every name bound inside ``fn`` (params, locals, loop targets)."""
    bound: Set[str] = set(fn.params)
    bound.update(a.arg for a in fn.node.args.kwonlyargs)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
    return bound


def intrinsic_effects(project: Project, fn: FunctionInfo) -> Effects:
    """Effects ``fn`` performs directly, ignoring its callees."""
    ctx = fn.module.ctx
    found: Set[str] = set()
    set_names = set_typed_locals(fn)
    bound = _bound_names(fn)
    global_decls: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            dotted = ctx.dotted_name(node.func)
            if dotted in WALL_CLOCK_CALLS:
                found.add(READS_CLOCK)
            elif dotted == DERIVE_GENERATOR:
                found.add(RNG_DERIVED)
            elif dotted in SEEDABLE_RNG_FACTORIES:
                if node.args or node.keywords:
                    found.add(RNG_DERIVED)
                else:
                    found.add(RNG_UNSEEDED)
            elif dotted is not None and (
                dotted.startswith("random.")
                or dotted.startswith("numpy.random.")
            ):
                found.add(RNG_UNSEEDED)
            elif dotted in ENV_CALLS or (
                dotted is not None and dotted.startswith("platform.")
            ):
                found.add(READS_ENV)
            elif dotted in IO_CALLS:
                found.add(IO)
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in IO_METHOD_NAMES:
                    found.add(IO)
                elif (
                    node.func.attr in MUTATING_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in fn.module.mutable_globals
                    and node.func.value.id not in bound
                ):
                    found.add(GLOBAL_WRITE)
        elif isinstance(node, ast.Attribute):
            dotted = ctx.dotted_name(node)
            if dotted in ENV_ATTRIBUTES:
                found.add(READS_ENV)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [
                node.target
            ]
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id in global_decls:
                    found.add(GLOBAL_WRITE)
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in fn.module.mutable_globals
                    and target.value.id not in bound
                ):
                    found.add(GLOBAL_WRITE)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if is_set_typed(node.iter, set_names):
                found.add(UNORDERED_ITERATION)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            if any(
                is_set_typed(gen.iter, set_names) for gen in node.generators
            ):
                found.add(UNORDERED_ITERATION)
    return frozenset(found)


def solve_effects(
    intrinsic: Mapping[str, Effects],
    edges: Mapping[str, Set[str]],
    pinned: Optional[Mapping[str, Effects]] = None,
) -> Dict[str, Effects]:
    """Least fixpoint of ``summary(f) = intrinsic(f) ∪ ⋃ summary(callee)``.

    ``pinned`` entries (declared effects) are trusted boundaries: their
    summaries never change and callee effects do not flow through them.
    Iteration order is sorted, so the result is deterministic; the
    lattice is finite, so termination is by monotonicity.
    """
    pins: Mapping[str, Effects] = pinned or {}
    names = sorted(set(intrinsic) | set(edges) | set(pins))
    summaries: Dict[str, Effects] = {
        name: pins.get(name, intrinsic.get(name, PURE)) for name in names
    }
    changed = True
    while changed:
        changed = False
        for name in names:
            if name in pins:
                continue
            summary = summaries[name]
            for callee in sorted(edges.get(name, ())):
                summary = join(summary, summaries.get(callee, PURE))
            if summary != summaries[name]:
                summaries[name] = summary
                changed = True
    return summaries


@dataclass
class EffectTable:
    """Per-function effect summaries plus the call graph they solved on."""

    project: Project
    summaries: Dict[str, Effects]
    intrinsic: Dict[str, Effects]
    declared: Dict[str, Effects]
    edges: Dict[str, Set[str]] = field(default_factory=dict)

    def function_effects(self, qualname: str) -> Effects:
        return self.summaries.get(qualname, PURE)

    def resolve(self, name: str) -> str:
        """A (possibly abbreviated) function name to its unique qualname.

        Accepts a full qualname, a ``Class.method`` suffix, or a bare
        function name; raises ``KeyError`` when unknown or ambiguous.
        """
        if name in self.project.functions:
            return name
        matches = [
            qualname
            for qualname in sorted(self.project.functions)
            if qualname.endswith(f".{name}")
        ]
        if not matches:
            raise KeyError(f"no function matches {name!r}")
        if len(matches) > 1:
            raise KeyError(
                f"{name!r} is ambiguous: {', '.join(matches)}"
            )
        return matches[0]

    def closure(self, name: str) -> Tuple[List[str], Effects]:
        """Worker-style closure from one entry: (functions, joined effects)."""
        qualname = self.resolve(name)
        entry = self.project.functions[qualname]
        order = [fn.qualname for fn in reachable(self.project, [entry])]
        joined = PURE
        for member in order:
            joined = join(joined, self.function_effects(member))
        return order, joined

    def worker_closure(self) -> Tuple[List[str], Effects]:
        """The pool-payload closure: every worker-reachable function."""
        entries = project_worker_entries(self.project)
        order = [fn.qualname for fn in reachable(self.project, entries)]
        joined = PURE
        for member in order:
            joined = join(joined, self.function_effects(member))
        return order, joined


def compute_effects(project: Project) -> EffectTable:
    """Solve the effect fixpoint for every function in ``project``."""
    intrinsic: Dict[str, Effects] = {}
    declared: Dict[str, Effects] = {}
    for qualname, fn in project.functions.items():
        intrinsic[qualname] = intrinsic_effects(project, fn)
        pinned = declared_effects(fn)
        if pinned is not None:
            declared[qualname] = pinned
    edges = call_edges(project)
    summaries = solve_effects(intrinsic, edges, declared)
    return EffectTable(
        project=project,
        summaries=summaries,
        intrinsic=intrinsic,
        declared=declared,
        edges=edges,
    )


def effects_for_sources(sources: Mapping[str, str]) -> EffectTable:
    """Convenience: build a project from ``{path: source}`` and solve it."""
    return compute_effects(Project.build(sources))


def effects_report(
    table: EffectTable, closures: Tuple[str, ...] = ()
) -> Dict[str, Any]:
    """JSON-ready effect-summary dump (the ``simlint effects`` payload)."""
    worker_functions, worker_joined = table.worker_closure()
    report: Dict[str, Any] = {
        "version": 1,
        "functions": {
            qualname: sorted(effects)
            for qualname, effects in sorted(table.summaries.items())
        },
        "declared": {
            qualname: sorted(effects)
            for qualname, effects in sorted(table.declared.items())
        },
        "worker_entries": [
            fn.qualname for fn in project_worker_entries(table.project)
        ],
        "worker_closure": {
            "functions": worker_functions,
            "effects": sorted(worker_joined),
        },
    }
    if closures:
        resolved: Dict[str, Any] = {}
        for name in closures:
            functions, joined = table.closure(name)
            resolved[name] = {
                "entry": table.resolve(name),
                "functions": functions,
                "effects": sorted(joined),
            }
        report["closures"] = resolved
    return report
