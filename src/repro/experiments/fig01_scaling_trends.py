"""Fig. 1 — projected peak-to-peak voltage swings across process nodes.

Paper: swings relative to the 45 nm / 1 V node grow monotonically and
roughly double by 16 nm (~2x) reaching ~2.5-3x at 11 nm.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.scaling.itrs import TECHNOLOGY_NODES, projected_voltage_swings


def run(quick: bool = False) -> ExperimentResult:
    n_samples = 20_000 if quick else 60_000
    swings = projected_voltage_swings(n_samples=n_samples)
    result = ExperimentResult(
        experiment_id="Fig. 1",
        title="Projected voltage swings relative to 45 nm (1 V) supply",
        columns=("node", "vdd (V)", "relative swing"),
    )
    for node in TECHNOLOGY_NODES:
        result.add_row(node.name, node.vdd, swings[node.name])
    result.series["swings"] = swings
    result.notes.append(
        "paper: swing roughly doubles by 16 nm; "
        f"measured 16 nm ratio = {swings['16nm']:.2f}"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
