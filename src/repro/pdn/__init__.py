"""Power-delivery-network (PDN) simulation substrate.

The paper senses on-die voltage of a Core 2 Duo through its
``VCCsense``/``VSSsense`` pins and extrapolates future voltage noise by
physically breaking decoupling capacitors off the package.  This package
replaces that physical apparatus with a lumped-element RLC model:

* :mod:`repro.pdn.elements` — passive components and impedance algebra.
* :mod:`repro.pdn.network` — the VRM → bulk → package → die ladder and its
  state-space form.
* :mod:`repro.pdn.decap` — the package capacitor inventory and the
  ``Proc100`` … ``Proc0`` decap-removal configurations of Fig. 5.
* :mod:`repro.pdn.impedance` — frequency sweeps and resonance analysis
  (Fig. 4).
* :mod:`repro.pdn.simulate` — fast time-domain solver for voltage response
  to a per-cycle current trace, plus a reference trapezoidal integrator.
* :mod:`repro.pdn.vrm` — voltage-regulator-module switching ripple.
* :mod:`repro.pdn.stimulus` — canonical current stimuli (reset, step,
  impedance-characterization loop).
"""

from repro.pdn.elements import Capacitor, Inductor, Resistor, parallel, series
from repro.pdn.network import PDNStage, PowerDeliveryNetwork
from repro.pdn.decap import (
    CapacitorBank,
    DecapConfiguration,
    PROC_CONFIGS,
    proc_config,
)
from repro.pdn.impedance import ImpedanceProfile
from repro.pdn.simulate import TransientSimulator, VoltageTrace
from repro.pdn.vrm import VoltageRegulatorModule
from repro.pdn.stimulus import current_step, reset_stimulus, square_wave_current
from repro.pdn.undervolt import CRITICAL_VOLTAGE, UndervoltResult, undervolt_to_failure

__all__ = [
    "Capacitor",
    "Inductor",
    "Resistor",
    "parallel",
    "series",
    "PDNStage",
    "PowerDeliveryNetwork",
    "CapacitorBank",
    "DecapConfiguration",
    "PROC_CONFIGS",
    "proc_config",
    "ImpedanceProfile",
    "TransientSimulator",
    "VoltageTrace",
    "VoltageRegulatorModule",
    "current_step",
    "reset_stimulus",
    "square_wave_current",
    "CRITICAL_VOLTAGE",
    "UndervoltResult",
    "undervolt_to_failure",
]
