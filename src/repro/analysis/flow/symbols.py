"""Cross-module symbol table for the flow engine.

The flow passes need to answer questions a single-file visitor cannot:
*which function does this call resolve to*, *what dimension does that
imported constant carry*, *what class is bound to this local*.  This
module builds the project model those answers come from:

* :class:`ModuleInfo` — one parsed file: its import-alias table (reused
  from :class:`repro.analysis.engine.FileContext`), module-level
  constants with their pinned dimensions, and mutable module globals;
* :class:`FunctionInfo` — one function or method: parameters, the
  dimensions *declared* for them (annotation comment first, unit-suffixed
  name second), and the declared return dimension;
* :class:`ClassInfo` — one class: its methods, instance-attribute
  dimensions and attribute *types* (``self.chip = Chip(...)``), both
  refined later by the inference pass;
* :class:`Project` — the cross-module indexes plus name resolution.

Signature annotations use a structured comment on the ``def`` line (or
the line directly above)::

    def time_constant(r, c):  # simlint: dim(r=ohm, c=F) -> s

Spellings are those of :data:`repro.analysis.flow.dimensions.NAMED_DIMS`.
An annotation always wins over a unit-suffixed name.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.analysis.engine import FileContext
from repro.analysis.flow.dimensions import Dim, dim_for_name, parse_dim

#: ``# simlint: dim(a=V, b=ohm) -> Hz`` annotation comments.
_DIM_COMMENT_RE = re.compile(
    r"#\s*simlint\s*:\s*dim\s*\(([^)]*)\)\s*(?:->\s*([^\s#]+))?"
)

#: Callables that construct or derive a random stream (CON001 targets).
STREAM_FACTORIES = frozenset(
    {
        "numpy.random.default_rng",
        "repro.random_utils.as_generator",
        "repro.random_utils.derive_generator",
    }
)

#: Dotted names that identify a process-pool constructor (CON002 scope).
PROCESS_POOLS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)


def module_name_for(path: str) -> str:
    """Dotted module name for ``path`` (walks up through ``__init__.py``)."""
    resolved = os.path.abspath(path)
    directory, filename = os.path.split(resolved)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts) if parts else stem


def _parse_dim_comment(
    lines: List[str], def_line: int
) -> Tuple[Dict[str, Dim], Optional[Dim]]:
    """Parse a ``# simlint: dim(...)`` comment at/above a ``def`` line."""
    for lineno in (def_line, def_line - 1):
        if not 1 <= lineno <= len(lines):
            continue
        match = _DIM_COMMENT_RE.search(lines[lineno - 1])
        if match is None:
            continue
        params: Dict[str, Dim] = {}
        for pair in match.group(1).split(","):
            if "=" not in pair:
                continue
            name, spelling = pair.split("=", 1)
            dim = parse_dim(spelling)
            if dim is not None:
                params[name.strip()] = dim
        returns = parse_dim(match.group(2)) if match.group(2) else None
        return params, returns
    return {}, None


@dataclass
class FunctionInfo:
    """One function or method plus its declared dimensional signature."""

    qualname: str
    name: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    module: "ModuleInfo"
    class_name: Optional[str] = None
    #: Positional parameter names in call order (``self`` included).
    params: List[str] = field(default_factory=list)
    #: Declared dims: annotation comment first, unit-suffixed name second.
    param_dims: Dict[str, Dim] = field(default_factory=dict)
    declared_return: Optional[Dim] = None
    #: True when ``declared_return`` came from an annotation comment (the
    #: strongest source; name-implied dims are weaker evidence).
    annotated_return: bool = False

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def positional_param(self, index: int, *, bound: bool) -> Optional[str]:
        """Name of the parameter receiving positional arg ``index``.

        ``bound`` skips ``self``/``cls`` for instance-style calls.
        """
        offset = 1 if (bound and self.is_method) else 0
        position = index + offset
        if 0 <= position < len(self.params):
            return self.params[position]
        return None

    @classmethod
    def build(
        cls,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        module: "ModuleInfo",
        class_name: Optional[str] = None,
    ) -> "FunctionInfo":
        qual = f"{module.name}.{class_name}.{node.name}" if class_name \
            else f"{module.name}.{node.name}"
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        kwonly = [a.arg for a in args.kwonlyargs]
        annotations, annotated_return = _parse_dim_comment(
            module.ctx.lines, node.lineno
        )
        param_dims: Dict[str, Dim] = {}
        for name in params + kwonly:
            if name in annotations:
                param_dims[name] = annotations[name]
            else:
                implied = dim_for_name(name)
                if implied is not None:
                    param_dims[name] = implied
        declared = annotated_return
        if declared is None:
            declared = dim_for_name(node.name)
        return cls(
            qualname=qual,
            name=node.name,
            node=node,
            module=module,
            class_name=class_name,
            params=params,
            param_dims=param_dims,
            declared_return=declared,
            annotated_return=annotated_return is not None,
        )


@dataclass
class ClassInfo:
    """One class: methods plus instance-attribute dims and types."""

    qualname: str
    name: str
    module: "ModuleInfo"
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.attr`` dimension, from attr-name suffix or ``__init__`` inference.
    attr_dims: Dict[str, Dim] = field(default_factory=dict)
    #: ``self.attr`` -> class qualname, for ``self.chip.run()`` resolution.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its module-scope symbol information."""

    name: str
    path: str
    ctx: FileContext
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level constants whose names pin a dimension.
    constant_dims: Dict[str, Dim] = field(default_factory=dict)
    #: Module-level names bound to mutable literals/constructors (CON003).
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    #: Every name assigned at module scope (mutable or not).
    global_names: Dict[str, int] = field(default_factory=dict)


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"list", "dict", "set", "defaultdict",
                                "Counter", "deque"}
    return False


class Project:
    """Cross-module symbol table + call-target resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Bare method name -> list of (class qualname, FunctionInfo); used
        #: as a reachability fallback when the receiver type is unknown.
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, sources: Mapping[str, str]) -> "Project":
        """Build the model from ``{path: source}`` (unparseable files skipped)."""
        project = cls()
        for path in sorted(sources):
            try:
                ctx = FileContext.from_source(sources[path], path)
            except SyntaxError:
                continue  # the line engine reports SIM000 for these
            project._add_module(ctx)
        return project

    def _add_module(self, ctx: FileContext) -> None:
        module = ModuleInfo(
            name=module_name_for(ctx.path), path=ctx.path, ctx=ctx
        )
        self.modules[module.name] = module
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo.build(node, module)
                module.functions[node.name] = info
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                self._add_class(node, module)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._add_module_binding(node, module)

    def _add_class(self, node: ast.ClassDef, module: ModuleInfo) -> None:
        cls_info = ClassInfo(
            qualname=f"{module.name}.{node.name}",
            name=node.name,
            module=module,
        )
        module.classes[node.name] = cls_info
        self.classes[cls_info.qualname] = cls_info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo.build(item, module, class_name=node.name)
                cls_info.methods[item.name] = info
                self.functions[info.qualname] = info
                self.methods_by_name.setdefault(item.name, []).append(info)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                implied = dim_for_name(item.target.id)
                if implied is not None:
                    cls_info.attr_dims[item.target.id] = implied

    def _add_module_binding(
        self, node: Union[ast.Assign, ast.AnnAssign], module: ModuleInfo
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            module.global_names[target.id] = target.lineno
            if value is not None and _is_mutable_value(value):
                module.mutable_globals[target.id] = target.lineno
            implied = dim_for_name(target.id)
            if implied is not None:
                module.constant_dims[target.id] = implied

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_dotted(
        self, dotted: str
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """A fully dotted name to the function/class it denotes, if known."""
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.classes:
            return self.classes[dotted]
        # ``repro.pdn.decap.DecapConfig.method`` style references.
        head, _, tail = dotted.rpartition(".")
        if head in self.classes and tail in self.classes[head].methods:
            return self.classes[head].methods[tail]
        return None

    def resolve_callee(
        self,
        module: ModuleInfo,
        func_expr: ast.AST,
        local_types: Optional[Mapping[str, str]] = None,
        current_class: Optional[str] = None,
        self_name: Optional[str] = None,
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """Resolve a call's target within the project, or ``None``.

        Resolution sources, strongest first: the module's import-alias
        table (absolute imports), module-local definitions, ``self.meth()``
        inside ``current_class``, and attribute calls on locals whose
        class type is known (``local_types``).
        """
        local_types = local_types or {}
        if isinstance(func_expr, ast.Name):
            dotted = module.ctx.imports.get(func_expr.id, func_expr.id)
            resolved = self.resolve_dotted(dotted)
            if resolved is not None:
                return resolved
            return self.resolve_dotted(f"{module.name}.{func_expr.id}")
        if isinstance(func_expr, ast.Attribute):
            base = func_expr.value
            attr = func_expr.attr
            if isinstance(base, ast.Name):
                # self.method() within the current class
                if (
                    current_class is not None
                    and self_name is not None
                    and base.id == self_name
                ):
                    cls_q = f"{module.name}.{current_class}"
                    cls_info = self.classes.get(cls_q)
                    if cls_info is not None:
                        if attr in cls_info.methods:
                            return cls_info.methods[attr]
                        attr_type = cls_info.attr_types.get(attr)
                        # self.attr used as a value elsewhere; handled by
                        # attribute_call below when chained.
                        if attr_type:
                            return self.classes.get(attr_type)
                # obj.method() where obj's class is locally known
                type_q = local_types.get(base.id)
                if type_q is not None:
                    cls_info = self.classes.get(type_q)
                    if cls_info is not None and attr in cls_info.methods:
                        return cls_info.methods[attr]
            elif isinstance(base, ast.Attribute) and isinstance(
                base.value, ast.Name
            ):
                # self.attr.method() via the class's attribute types
                if (
                    current_class is not None
                    and self_name is not None
                    and base.value.id == self_name
                ):
                    cls_q = f"{module.name}.{current_class}"
                    cls_info = self.classes.get(cls_q)
                    if cls_info is not None:
                        attr_type = cls_info.attr_types.get(base.attr)
                        if attr_type:
                            target = self.classes.get(attr_type)
                            if target is not None and attr in target.methods:
                                return target.methods[attr]
            # Fully dotted module-path call (``network.ladder(...)``).
            dotted = module.ctx.dotted_name(func_expr)
            if dotted is not None:
                return self.resolve_dotted(dotted)
        return None

    def constant_dim(self, module: ModuleInfo, dotted: str) -> Optional[Dim]:
        """Dimension of a fully dotted module-level constant, if known."""
        head, _, tail = dotted.rpartition(".")
        target = self.modules.get(head)
        if target is not None:
            return target.constant_dims.get(tail)
        return None
