"""FO4 ring-oscillator frequency versus voltage margin (Fig. 2).

The paper's Fig. 2 comes from circuit simulation of an 11-stage
fanout-of-4 inverter ring across PTM nodes.  The standard analytic stand-in
is the alpha-power-law MOSFET model: gate delay scales as

    delay(V) ∝ V / (V - Vth)^alpha

so the ring frequency at an operating margin ``m`` (supply at
``Vdd * (1 - m)``) relative to full supply is

    f(m) / f(0) = [ (V - Vth) / (Vdd - Vth) ]^alpha * (Vdd / V)

Lower-voltage nodes sit closer to threshold, so the same *relative* margin
costs disproportionately more frequency — the reason a 20 % margin loses
~25 % of peak frequency at 45 nm but more than 50 % by 16 nm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.scaling.itrs import TECHNOLOGY_NODES, TechnologyNode

#: Velocity-saturation exponent of short-channel devices.
DEFAULT_ALPHA = 1.3

#: Number of ring stages in the paper's oscillator (for documentation /
#: period computation; the frequency *ratio* is stage-count independent).
RING_STAGES = 11


@dataclass(frozen=True)
class RingOscillatorModel:
    """Alpha-power-law ring oscillator for one technology node."""

    node: TechnologyNode
    alpha: float = DEFAULT_ALPHA

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")

    def stage_delay(self, supply: float) -> float:
        """Relative FO4 delay at an absolute supply voltage (a.u.)."""
        if supply <= self.node.vth:
            raise ConfigurationError(
                f"supply {supply} V is at/below threshold {self.node.vth} V"
            )
        return supply / (supply - self.node.vth) ** self.alpha

    def frequency(self, supply: float) -> float:
        """Relative ring frequency at an absolute supply voltage (a.u.)."""
        return 1.0 / (2 * RING_STAGES * self.stage_delay(supply))

    def relative_frequency(self, margin: float) -> float:
        """Peak frequency fraction when operating ``margin`` below Vdd.

        ``margin`` is a fraction of nominal supply (the Fig. 2 x-axis).
        Returns NaN when the margined supply falls to the threshold —
        the device simply stops, which is how the paper's curves end.
        """
        if not 0 <= margin < 1:
            raise ConfigurationError("margin must be in [0, 1)")
        supply = self.node.vdd * (1.0 - margin)
        if supply <= self.node.vth:
            return float("nan")
        return self.frequency(supply) / self.frequency(self.node.vdd)


def frequency_vs_margin(
    margins: np.ndarray,
    nodes: Sequence[TechnologyNode] = TECHNOLOGY_NODES[:4],
    alpha: float = DEFAULT_ALPHA,
) -> Dict[str, np.ndarray]:
    """Fig. 2: peak-frequency percentage versus margin per node.

    The paper plots 45/32/22/16 nm; the default ``nodes`` match.
    """
    margins = np.asarray(margins, dtype=float)
    curves: Dict[str, np.ndarray] = {}
    for node in nodes:
        model = RingOscillatorModel(node, alpha=alpha)
        curves[node.name] = np.array(
            [100.0 * model.relative_frequency(float(m)) for m in margins]
        )
    return curves
