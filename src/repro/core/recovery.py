"""The error-recovery mechanism catalog (Sec. III-B's recovery-cost axis).

The paper's recovery-cost sweep is anchored to real mechanisms:

* **Razor** (Ernst et al., MICRO'03) — pipeline-stage-level timing-error
  detection and replay; recovery costs a few cycles.
* **DeCoR** (Gupta et al., HPCA'08) — delays instruction commit in the
  existing LSQ/ROB until an emergency check clears; tens of cycles.
* **Signature-based prediction** (Reddi et al., HPCA'09) — predicts
  emergencies from program/microarchitectural activity over an optimistic
  ~100-cycle hardware checkpoint.
* **Production checkpoint/rollback** (IBM S/390 G5, SPARC64 V) — the
  general-purpose checkpointing that already ships for soft-error
  tolerance; thousands to ~100k cycles per recovery.

:class:`RecoveryMechanism` couples each scheme's cost with its
implementation class so analyses can speak in mechanism names rather than
raw cycle counts, and :func:`evaluate_mechanisms` runs the resilience
model across the catalog.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro import observability as obs
from repro.core.resilience import OptimalMargin, ResilientDesignModel
from repro.errors import ConfigurationError


class RecoveryGranularity(enum.Enum):
    """How invasive the mechanism is to the microarchitecture."""

    PIPELINE_STAGE = "pipeline-stage"
    COMMIT_DELAY = "commit-delay"
    CHECKPOINT_FINE = "fine checkpoint"
    CHECKPOINT_COARSE = "coarse checkpoint"


@dataclass(frozen=True)
class RecoveryMechanism:
    """One error-recovery scheme.

    Parameters
    ----------
    name:
        Scheme name as the paper cites it.
    cost_cycles:
        Cycles lost per emergency recovery.
    granularity:
        Implementation class; finer granularity implies more invasive
        changes to traditional structures (the paper's argument for
        preferring software assistance over ever-finer hardware).
    intrusive:
        Whether deploying it requires redesigning core structures.
    reference:
        Citation string.
    """

    name: str
    cost_cycles: float
    granularity: RecoveryGranularity
    intrusive: bool
    reference: str = ""

    def __post_init__(self) -> None:
        if self.cost_cycles < 0:
            raise ConfigurationError("cost_cycles must be non-negative")


#: The paper's reference points, ordered from finest to coarsest.
MECHANISMS: Tuple[RecoveryMechanism, ...] = (
    RecoveryMechanism(
        name="Razor",
        cost_cycles=1,
        granularity=RecoveryGranularity.PIPELINE_STAGE,
        intrusive=True,
        reference="Ernst et al., MICRO 2003",
    ),
    RecoveryMechanism(
        name="DeCoR",
        cost_cycles=10,
        granularity=RecoveryGranularity.COMMIT_DELAY,
        intrusive=True,
        reference="Gupta et al., HPCA 2008",
    ),
    RecoveryMechanism(
        name="Signature prediction + checkpoint",
        cost_cycles=100,
        granularity=RecoveryGranularity.CHECKPOINT_FINE,
        intrusive=True,
        reference="Reddi et al., HPCA 2009",
    ),
    RecoveryMechanism(
        name="Production checkpoint (fast)",
        cost_cycles=1_000,
        granularity=RecoveryGranularity.CHECKPOINT_COARSE,
        intrusive=False,
        reference="IBM S/390 G5-class rollback",
    ),
    RecoveryMechanism(
        name="Production checkpoint (typical)",
        cost_cycles=10_000,
        granularity=RecoveryGranularity.CHECKPOINT_COARSE,
        intrusive=False,
        reference="shipping checkpoint/rollback hardware",
    ),
    RecoveryMechanism(
        name="Production checkpoint (slow)",
        cost_cycles=100_000,
        granularity=RecoveryGranularity.CHECKPOINT_COARSE,
        intrusive=False,
        reference="worst-case production recovery",
    ),
)


def mechanism_by_name(name: str) -> RecoveryMechanism:
    for mechanism in MECHANISMS:
        if mechanism.name == name:
            return mechanism
    raise ConfigurationError(
        f"unknown mechanism {name!r}; have {[m.name for m in MECHANISMS]}"
    )


def non_intrusive_mechanisms() -> Tuple[RecoveryMechanism, ...]:
    """Schemes already shipping in commodity parts.

    The paper's thesis: software scheduling should make *these* viable
    instead of forcing ever finer (intrusive) hardware.
    """
    return tuple(m for m in MECHANISMS if not m.intrusive)


def evaluate_mechanisms(
    model: ResilientDesignModel,
    mechanisms: Sequence[RecoveryMechanism] = MECHANISMS,
) -> Dict[str, OptimalMargin]:
    """Optimal margin and improvement per catalogued mechanism."""
    results: Dict[str, OptimalMargin] = {}
    with obs.span("recovery.evaluate", mechanisms=len(mechanisms)):
        for mechanism in mechanisms:
            optimal = model.optimal_margin(mechanism.cost_cycles)
            obs.increment("repro_recovery_evaluations_total")
            # Expected rollback recoveries the mechanism would service at
            # its own optimal margin, in events per 1K cycles.
            obs.set_gauge(
                "repro_recovery_rollbacks_per_1k",
                1000.0 * model.mean_emergency_rate(optimal.margin),
                mechanism=mechanism.name,
            )
            results[mechanism.name] = optimal
    return results
