"""The fault injector: deterministic decisions at named hook points.

Every decision is drawn from a generator derived from ``(plan seed,
site, key, occurrence)`` via :func:`repro.random_utils.derive_generator`
— the same derivation discipline the simulation itself uses — so
whether a given fault fires depends only on the plan and the decision's
identity, never on wall-clock time, worker placement, or how many other
decisions were taken first.  A chaos run is therefore reproducible
bit-for-bit: re-running the same campaign under the same plan injects
the same faults at the same points.

``occurrence`` disambiguates repeated decisions at one ``(site, key)``:
the executor passes the run's attempt number explicitly (so a retried
run faces a fresh, but still deterministic, decision), while cache hook
points let the injector count occurrences per instance.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro import observability as obs
from repro import units
from repro.faults.plan import FaultPlan, parse_plan
from repro.random_utils import derive_generator


class InjectedFault(RuntimeError):
    """A transient, injected simulation failure.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults model infrastructure failures (a worker dying mid-run), not
    configuration mistakes, and must travel through the executor's
    retry machinery like any unexpected exception would.
    """


class BitErrorFault(InjectedFault):
    """An injected SRAM-style bit flip from running below Vmin.

    A subclass of :class:`InjectedFault` so the executor's existing
    retry/fallback machinery absorbs it unchanged; the distinct type
    (and the corrupted-word rendering in the message) lets chaos
    tooling tell voltage-induced corruption apart from the generic
    transient-exception kind.
    """


def garble_file(path: Union[str, Path]) -> None:
    """Destroy a file's contents in place (keeps the entry present).

    Used by the ``cache.store`` hook: the record file stays on disk —
    so the next lookup *finds* it — but no longer decodes, exercising
    the corruption-tolerant read path rather than the plain-miss path.
    """
    Path(path).write_bytes(b"\x00injected-fault: not a gzip record\x00")


class FaultInjector:
    """Decides, per hook point, whether a planned fault fires.

    Parameters
    ----------
    plan:
        A :class:`~repro.faults.plan.FaultPlan` or a plan spec string
        (workers rebuild their injector from the pickled spec).
    """

    def __init__(self, plan: Union[FaultPlan, str]) -> None:
        parsed = parse_plan(plan) if isinstance(plan, str) else plan
        if parsed is None:
            raise ValueError("FaultInjector needs a non-empty plan")
        self._plan = parsed
        self._occurrences: Dict[Tuple[str, str], int] = {}
        self.injected: Dict[str, int] = {}

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def fires(
        self, site: str, key: str, occurrence: Optional[int] = None
    ) -> bool:
        """Whether the planned fault at ``site`` fires for ``key``.

        ``occurrence`` is the decision's repeat index (e.g. the run's
        attempt number); when omitted the injector counts repeats of
        ``(site, key)`` itself, so e.g. a re-stored cache record faces
        a fresh decision each time.
        """
        return self.fires_scaled(
            site, key, self._plan.rate(site), occurrence
        )

    def fires_scaled(
        self,
        site: str,
        key: str,
        probability: float,
        occurrence: Optional[int] = None,
    ) -> bool:
        """Like :meth:`fires`, with an explicit firing ``probability``.

        The decision stream is still derived from ``(plan seed, site,
        key, occurrence)``, so two injectors with the same plan seed
        agree on every decision even when their probabilities are
        modulated by external state (undervolt depth, say) — the draw
        is fixed, only the threshold moves.
        """
        if occurrence is None:
            slot = (site, key)
            occurrence = self._occurrences.get(slot, 0)
            self._occurrences[slot] = occurrence + 1
        if probability <= 0.0:
            return False
        rng = derive_generator(
            self._plan.seed, "fault", site, key, occurrence
        )
        fired = bool(rng.random() < probability)
        if fired:
            self.injected[site] = self.injected.get(site, 0) + 1
            obs.increment("repro_faults_injected_total", site=site)
        return fired

    # -- fault actions (what a fired decision does) ---------------------
    def crash_worker(self, key: str, occurrence: int) -> None:
        """``worker.crash``: kill this process hard, as a real worker
        crash (OOM kill, segfault) would — no cleanup, no exception."""
        if self.fires("worker.crash", key, occurrence):
            os._exit(3)

    def hang_worker(self, key: str, occurrence: int) -> None:
        """``worker.hang``: stall this worker for the plan's hang
        duration before it does any work (a slow/hung worker)."""
        if self.fires("worker.hang", key, occurrence):
            time.sleep(self._plan.hang_seconds)

    def raise_transient(self, key: str, occurrence: int) -> None:
        """``simulate.exception``: fail this attempt with a transient
        error the retry path must absorb."""
        if self.fires("simulate.exception", key, occurrence):
            raise InjectedFault(
                f"injected transient failure for {key!r} "
                f"(attempt {occurrence})"
            )

    def bit_error(self, key: str, occurrence: int) -> None:
        """``vmin.biterror``: voltage-dependent SRAM bit corruption.

        The effective probability is the plan's ``biterror`` rate
        multiplied by the bit-error-rate curve at the plan's undervolt
        depth — zero at or above Vmin, approaching the full plan rate
        deep below it.  When it fires, a seeded 32-bit word is rendered
        with one flipped bit so logs show *which* corruption happened,
        and the attempt fails with :class:`BitErrorFault` for the retry
        machinery to absorb.
        """
        depth_volt = self._plan.undervolt_depth_volt
        if depth_volt <= 0.0:
            return
        # Imported here, not at module top: repro.undervolt itself
        # builds FaultInjectors for the below-Vmin probe.
        from repro.undervolt.model import bit_error_rate_at_depth

        probability = self._plan.rate(
            "vmin.biterror"
        ) * bit_error_rate_at_depth(depth_volt)
        if not self.fires_scaled(
            "vmin.biterror", key, probability, occurrence
        ):
            return
        rng = derive_generator(
            self._plan.seed, "fault", "vmin.biterror", key, occurrence,
            "word",
        )
        word = int(rng.integers(0, 2**32))
        bit = int(rng.integers(0, 32))
        raise BitErrorFault(
            f"injected SRAM bit error for {key!r} (attempt {occurrence}): "
            f"word 0x{word:08x} read as 0x{word ^ (1 << bit):08x} "
            f"(bit {bit} flipped at "
            f"{depth_volt / units.MILLI_VOLT:g} mV below Vmin)"
        )

    def summary(self) -> str:
        """``site xN`` counts of faults this injector actually fired."""
        if not self.injected:
            return "no faults injected"
        parts = [
            f"{site} x{count}"
            for site, count in sorted(self.injected.items())
        ]
        return "injected " + ", ".join(parts)
