"""The gate: src/repro (simlint included) is simlint-clean, un-baselined.

This is the test that lets the next ten refactors move fast: any new
stdlib-random draw, wall-clock read, raw ``22e-6``, or float ``==``
anywhere under src/repro fails the suite with an exact location.
"""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.analysis import flow_paths, lint_paths
from repro.analysis.findings import Severity
from repro.analysis.registry import family_of


def src_repro_dir() -> str:
    return str(Path(repro.__file__).resolve().parent)


def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]


def test_src_repro_is_simlint_clean():
    findings = lint_paths([src_repro_dir()])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_src_repro_is_flow_clean_outside_perf():
    """The dataflow engine (DIM/CON/TNT) reports nothing.

    This is the dimensional-analysis analogue of the line-rule gate:
    any new Ω+F sum, wrong-dimension argument, fresh-entropy worker
    stream, or worker-side global write fails with an exact location.
    PERF warnings are the one exception — they form the vectorization
    worklist and are held to the justified baseline by the test below.
    """
    findings = [
        f for f in flow_paths([src_repro_dir()])
        if family_of(f.code) != "PERF"
    ]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_src_repro_perf_findings_match_justified_baseline(monkeypatch):
    """Every PERF finding in src/repro is baselined *with* a reason.

    The PERF family flags hot loops worth vectorizing, not bugs; the
    contract is that each one is either fixed or carried in
    ``simlint-baseline.json`` with a non-empty justification string
    saying why it stays.  A new hot loop (or a fixed one whose stale
    entry lingers) fails here with the exact delta.
    """
    root = repo_root()
    payload = json.loads(
        (root / "simlint-baseline.json").read_text(encoding="utf-8")
    )
    baselined = {
        (item["path"], item["code"], item["fingerprint"])
        for item in payload["findings"]
        if family_of(item["code"]) == "PERF"
    }
    for item in payload["findings"]:
        if family_of(item["code"]) == "PERF":
            assert str(item.get("justification", "")).strip(), (
                f"{item['path']}:{item['line']} {item['code']} is "
                "baselined without a justification"
            )
    # Fingerprints hash the repo-relative path the baseline was written
    # with, so lint from the repo root using the same relative path.
    monkeypatch.chdir(root)
    live = {
        (f.path, f.code, f.fingerprint)
        for f in flow_paths(["src/repro"])
        if family_of(f.code) == "PERF"
    }
    assert live == baselined, (
        f"unbaselined PERF findings: {sorted(live - baselined)}; "
        f"stale baseline entries: {sorted(baselined - live)}"
    )


def test_perf_worklist_is_burned_down(monkeypatch):
    """The vectorization worklist is empty and stays empty.

    The hot path is vectorized end to end (docs/performance.md), so
    ``src/repro`` produces zero live PERF findings and the committed
    baseline grandfathers none — a new per-cycle loop, stackable
    append, or unbatched filter call on a measured hot path fails
    here (and in CI's ``perf-baseline-empty`` step) immediately.
    """
    monkeypatch.chdir(repo_root())
    live = [
        f for f in flow_paths(["src/repro"])
        if family_of(f.code) == "PERF"
    ]
    assert live == [], "\n".join(f.format() for f in live)
    payload = json.loads(
        (repo_root() / "simlint-baseline.json").read_text(encoding="utf-8")
    )
    grandfathered = [
        item for item in payload["findings"]
        if family_of(item["code"]) == "PERF"
    ]
    assert grandfathered == []


def test_src_repro_has_no_errors_even_at_warning_level():
    """Redundant with the above today; keeps severity semantics honest."""
    findings = lint_paths([src_repro_dir()])
    assert [f for f in findings if f.severity is Severity.ERROR] == []
