"""Synthetic models of the 29 SPEC CPU2006 benchmarks used in the paper.

Each entry captures what matters for voltage noise: mean pipeline activity,
per-cycle stall-event rates, memory-burst structure, base IPC, program
duration, and — for the Fig. 14 exemplars — phase timelines:

* ``482.sphinx`` has *no* phases: a flat droop profile around the suite's
  high end;
* ``416.gamess`` steps through four distinct phases;
* ``465.tonto`` oscillates between two regimes every few tens of seconds.

Rates are calibrated to the known character of each program (mcf / lbm /
libquantum are memory-bound; gobmk / sjeng / astar are branchy; gamess /
povray / namd are compute-dense) so the suite spans a heterogeneous mix of
stall ratios, reproducing Fig. 15's spread and its strong droop↔stall-ratio
correlation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.errors import WorkloadError
from repro.uarch.events import StallEvent
from repro.workloads.base import (
    BurstModel,
    PhasedWorkload,
    PhaseSegment,
    StatisticalWorkload,
    StatProfile,
    Workload,
)


def _rates(
    l1: float = 0.0,
    l2: float = 0.0,
    tlb: float = 0.0,
    br: float = 0.0,
    excp: float = 0.0,
) -> Dict[StallEvent, float]:
    rates = {
        StallEvent.L1_MISS: l1,
        StallEvent.L2_MISS: l2,
        StallEvent.TLB_MISS: tlb,
        StallEvent.BRANCH_MISPREDICT: br,
        StallEvent.EXCEPTION: excp,
    }
    return {event: rate for event, rate in rates.items() if rate > 0}


def _stall_weight(rates: Mapping[StallEvent, float]) -> float:
    """First-order stall ratio implied by a rate table."""
    from repro.uarch.events import profile_for

    return sum(
        rate * (profile_for(event).stall_cycles + profile_for(event).drain_cycles)
        for event, rate in rates.items()
    )


def _profile(
    activity: float,
    ipc: float,
    rates: Mapping[StallEvent, float],
    sigma: float = 0.05,
    tau: float = 3000.0,
    mem_frac: Optional[float] = None,
    dwell: float = 2000.0,
) -> StatProfile:
    # Stall events cluster into bursts in every real program; how bursty
    # and how deep scales with the program's overall stall weight, which
    # ties package-band droop energy to the stall ratio the way Fig. 15
    # observes (r = 0.97).
    weight = _stall_weight(rates)
    if mem_frac is None:
        mem_frac = min(0.12 + 0.9 * weight, 0.50)
    drop = min(max(1.0 - 1.6 * weight, 0.30), 0.85)
    # Stall-heavy programs flip between burst and compute regimes faster,
    # producing more package-band transitions per unit time.
    dwell = max(700.0, dwell * (1.0 - 1.3 * min(weight, 0.6)))
    burst = BurstModel(
        memory_fraction=mem_frac,
        dwell_cycles=dwell,
        activity_drop=drop,
        event_boost=5.0,
    )
    return StatProfile(
        mean_activity=activity,
        activity_sigma=sigma,
        activity_tau_cycles=tau,
        event_rates=dict(rates),
        burst=burst,
        base_ipc=ipc,
    )


def _flat(
    name: str,
    duration_s: float,
    activity: float,
    ipc: float,
    rates: Mapping[StallEvent, float],
    sigma: float = 0.05,
    mem_frac: Optional[float] = None,
) -> StatisticalWorkload:
    return StatisticalWorkload(
        name,
        _profile(activity, ipc, rates, sigma=sigma, mem_frac=mem_frac),
        duration_seconds=duration_s,
    )


def _build_catalog() -> Dict[str, Workload]:
    catalog: Dict[str, Workload] = {}

    def add(workload: Workload) -> None:
        catalog[workload.name] = workload

    # ----- memory-bound programs: high L2 traffic, long-dwell bursts -----
    add(_flat("mcf", 1400, 0.66, 0.45,
              _rates(l1=0.009, l2=0.0023, tlb=0.0006, br=0.006),
              sigma=0.07, mem_frac=0.45))
    add(_flat("lbm", 1100, 0.66, 0.55,
              _rates(l1=0.007, l2=0.0027, br=0.001),
              sigma=0.08, mem_frac=0.50))
    add(_flat("libquantum", 1500, 0.68, 0.70,
              _rates(l1=0.005, l2=0.0031, br=0.0015),
              sigma=0.09, mem_frac=0.50))
    add(_flat("milc", 1200, 0.66, 0.65,
              _rates(l1=0.008, l2=0.0019, tlb=0.0004, br=0.001),
              sigma=0.07, mem_frac=0.40))
    add(_flat("soplex", 900, 0.66, 0.75,
              _rates(l1=0.009, l2=0.0010, tlb=0.0005, br=0.004),
              sigma=0.06, mem_frac=0.35))
    add(_flat("omnetpp", 1000, 0.64, 0.60,
              _rates(l1=0.010, l2=0.0009, tlb=0.0009, br=0.006),
              sigma=0.06, mem_frac=0.35))
    add(_flat("gemsfdtd", 1300, 0.66, 0.80,
              _rates(l1=0.008, l2=0.0016, tlb=0.0003, br=0.0008),
              sigma=0.07, mem_frac=0.40))
    add(_flat("leslie3d", 1200, 0.68, 0.90,
              _rates(l1=0.007, l2=0.0009, br=0.0008),
              sigma=0.06, mem_frac=0.35))
    add(_flat("bwaves", 1350, 0.68, 0.95,
              _rates(l1=0.006, l2=0.0008, br=0.0006),
              sigma=0.06, mem_frac=0.30))

    # ----- branchy integer programs: flush-heavy, moderate cache traffic --
    # astar carries mild phases: its droop profile looks flat alone, but
    # the Fig. 16 sliding-window experiment exposes which of its regions
    # interfere constructively vs destructively with a co-runner.
    add(PhasedWorkload("astar", [
        PhaseSegment(500, _profile(0.74, 1.20,
                     _rates(l1=0.008, l2=0.0003, br=0.008), mem_frac=0.10),
                     name="search-light"),
        PhaseSegment(300, _profile(0.66, 1.00,
                     _rates(l1=0.012, l2=0.0008, br=0.014), mem_frac=0.25),
                     name="search-heavy"),
        PhaseSegment(250, _profile(0.70, 1.10,
                     _rates(l1=0.010, l2=0.0005, br=0.011), mem_frac=0.15),
                     name="refine"),
    ]))
    add(_flat("sjeng", 1150, 0.75, 1.20,
              _rates(l1=0.008, l2=0.0003, br=0.013), sigma=0.04))
    add(_flat("gobmk", 1000, 0.74, 1.15,
              _rates(l1=0.009, l2=0.0003, br=0.014), sigma=0.04))
    add(_flat("perlbench", 800, 0.76, 1.40,
              _rates(l1=0.011, l2=0.0004, tlb=0.0004, br=0.009), sigma=0.05))
    add(_flat("xalan", 950, 0.70, 1.20,
              _rates(l1=0.010, l2=0.0006, tlb=0.0007, br=0.009),
              sigma=0.05, mem_frac=0.20))

    # ----- mixed programs, some with visible phase structure -------------
    add(PhasedWorkload("gcc", [
        PhaseSegment(120, _profile(0.72, 1.30,
                     _rates(l1=0.010, l2=0.0005, br=0.008), mem_frac=0.15),
                     name="parse"),
        PhaseSegment(160, _profile(0.60, 0.90,
                     _rates(l1=0.012, l2=0.0009, br=0.007), mem_frac=0.30),
                     name="optimize"),
        PhaseSegment(140, _profile(0.70, 1.20,
                     _rates(l1=0.009, l2=0.0006, br=0.009), mem_frac=0.20),
                     name="emit"),
    ]))
    add(PhasedWorkload("bzip2", [
        PhaseSegment(180, _profile(0.78, 1.50,
                     _rates(l1=0.012, l2=0.0004, br=0.008)), name="compress"),
        PhaseSegment(150, _profile(0.68, 1.20,
                     _rates(l1=0.010, l2=0.0007, br=0.006), mem_frac=0.20),
                     name="decompress"),
    ]))
    add(_flat("hmmer", 850, 0.85, 1.90,
              _rates(l1=0.011, l2=0.0002, br=0.004), sigma=0.03))
    add(_flat("h264ref", 1250, 0.82, 1.80,
              _rates(l1=0.009, l2=0.0003, br=0.005), sigma=0.04))
    add(_flat("cactusadm", 1550, 0.68, 1.00,
              _rates(l1=0.007, l2=0.0008, tlb=0.0002, br=0.0005),
              sigma=0.06, mem_frac=0.30))
    add(_flat("zeusmp", 1300, 0.70, 1.10,
              _rates(l1=0.008, l2=0.0007, br=0.001),
              sigma=0.06, mem_frac=0.25))
    add(_flat("wrf", 1500, 0.72, 1.25,
              _rates(l1=0.008, l2=0.0006, br=0.002),
              sigma=0.05, mem_frac=0.20))
    add(_flat("dealii", 1100, 0.78, 1.55,
              _rates(l1=0.009, l2=0.0004, br=0.004), sigma=0.04))
    add(_flat("gromacs", 1050, 0.84, 1.85,
              _rates(l1=0.007, l2=0.0002, br=0.003), sigma=0.03))
    add(_flat("calculix", 1200, 0.82, 1.75,
              _rates(l1=0.008, l2=0.0003, br=0.002), sigma=0.04))
    add(_flat("namd", 1300, 0.88, 2.00,
              _rates(l1=0.006, l2=0.0001, br=0.002), sigma=0.03))
    add(_flat("povray", 900, 0.88, 1.95,
              _rates(l1=0.006, l2=0.0001, br=0.005), sigma=0.03))

    # ----- the Fig. 14 phase exemplars ------------------------------------
    # 482.sphinx: no phases, stable near the suite's high end (~1600 s).
    add(_flat("sphinx", 1600, 0.66, 0.95,
              _rates(l1=0.013, l2=0.0010, tlb=0.0006, br=0.008),
              sigma=0.05, mem_frac=0.30))
    # 416.gamess: four phases, droop level stepping between regimes (~550 s).
    add(PhasedWorkload("gamess", [
        PhaseSegment(140, _profile(0.86, 1.90,
                     _rates(l1=0.006, l2=0.0001, br=0.003)), name="scf-1"),
        PhaseSegment(130, _profile(0.66, 1.20,
                     _rates(l1=0.011, l2=0.0007, br=0.007), mem_frac=0.25),
                     name="integrals"),
        PhaseSegment(150, _profile(0.84, 1.80,
                     _rates(l1=0.007, l2=0.0002, br=0.004)), name="scf-2"),
        PhaseSegment(130, _profile(0.64, 1.10,
                     _rates(l1=0.012, l2=0.0008, br=0.008), mem_frac=0.30),
                     name="gradient"),
    ]))
    # 465.tonto: strong periodic oscillation every few tens of seconds
    # (~2000 s total); `repeat` wraps the two-phase cycle.
    add(PhasedWorkload("tonto", [
        PhaseSegment(38, _profile(0.85, 1.85,
                     _rates(l1=0.007, l2=0.0002, br=0.004)), name="compute"),
        PhaseSegment(42, _profile(0.62, 1.05,
                     _rates(l1=0.012, l2=0.0009, br=0.008), mem_frac=0.35),
                     name="memory"),
    ], repeat=True, total_duration_seconds=2000.0))

    return catalog


#: All 29 CPU2006 models, keyed by (short) benchmark name.
SPEC_CPU2006: Mapping[str, Workload] = _build_catalog()

#: Canonical suite ordering used by figures.
SPEC_NAMES: Tuple[str, ...] = tuple(sorted(SPEC_CPU2006))


def spec_benchmark(name: str) -> Workload:
    """Look up a CPU2006 model by short name (e.g. ``"mcf"``)."""
    try:
        return SPEC_CPU2006[name]
    except KeyError:
        raise WorkloadError(
            f"unknown SPEC CPU2006 benchmark {name!r}; have {sorted(SPEC_CPU2006)}"
        ) from None
