"""Per-file lint result cache keyed on content hashes.

Warm CI lint runs should not re-analyze files that have not changed.
The cache is a single JSON file mapping opaque keys to serialized
finding lists:

* line-rule results key on the file's **content digest** plus the active
  rule signature — editing any *other* file cannot invalidate them;
* flow results additionally fold in the **project digest** (the sorted
  set of ``(path, content digest)`` pairs), because interprocedural
  findings in one file can be caused by an edit in another.  One changed
  file therefore invalidates every flow entry — correctness first; the
  warm-run fast path (nothing changed, the common CI case) stays O(read);
* flow results also fold in the **registry signature** — the full
  registered rule-ID set with per-family analysis versions — so landing
  a new rule family (or changing a pass's semantics) invalidates every
  cached flow entry instead of silently replaying pre-family results.

Corrupt or version-skewed cache files are discarded silently: a cache
can always be rebuilt, and a lint run must never fail because of one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.analysis.findings import Finding, Severity

_FORMAT_VERSION = 1


def source_digest(source: str) -> str:
    """Content hash of one file's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:24]


def rules_signature(codes: Iterable[str]) -> str:
    """Stable identity of an active rule set."""
    material = ",".join(sorted(codes))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]


def registry_signature() -> str:
    """Identity of the *registered* rule set and its analysis versions.

    Folded into every flow cache key alongside the active-rule
    signature: adding a new rule family (or bumping a family's
    analysis version) must invalidate cached flow entries, otherwise a
    warm run would silently replay pre-family results that never saw
    the new rules.  The active-rule signature alone cannot catch this —
    a plain ``--flow`` run before and after the addition selects "all
    rules" both times.
    """
    from repro.analysis.registry import all_rules, family_version

    material = ";".join(
        f"{rule.code}@{family_version(rule.code)}" for rule in all_rules()
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]


def project_digest(digests: Mapping[str, str]) -> str:
    """Identity of a whole analyzed file set (``{path: source_digest}``)."""
    material = "\x1f".join(
        f"{path}={digest}" for path, digest in sorted(digests.items())
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:24]


def _encode(finding: Finding) -> dict:
    payload = finding.to_dict()
    payload["source_line"] = finding.source_line
    return payload


def _decode(payload: dict) -> Finding:
    return Finding(
        code=payload["code"],
        message=payload["message"],
        path=payload["path"],
        line=int(payload["line"]),
        column=int(payload["column"]),
        severity=Severity(payload["severity"]),
        source_line=payload.get("source_line", ""),
    )


class LintCache:
    """A content-addressed store of per-file finding lists."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._entries: Dict[str, List[dict]] = {}
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _FORMAT_VERSION
            or not isinstance(payload.get("entries"), dict)
        ):
            return
        self._entries = payload["entries"]

    def get(self, key: str) -> Optional[List[Finding]]:
        """Cached findings for ``key``, counting a hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        try:
            findings = [_decode(item) for item in entry]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            del self._entries[key]
            return None
        self.hits += 1
        return findings

    def peek(self, key: str) -> bool:
        """True when ``key`` is cached (no hit/miss accounting)."""
        return key in self._entries

    def put(self, key: str, findings: List[Finding]) -> None:
        self._entries[key] = [_encode(f) for f in findings]
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = {"version": _FORMAT_VERSION, "entries": self._entries}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp_path, self.path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
        self._dirty = False

    def summary(self) -> Tuple[int, int]:
        return self.hits, self.misses
