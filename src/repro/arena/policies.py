"""Arena policies: one N-core interface, many placement strategies.

Every policy implements :meth:`ArenaPolicy.propose` — given a job pool,
a core count, an oracle and a seed, emit a partition
:class:`~repro.arena.schedule.Schedule`.  Policies are stateless: all
randomness is derived inside ``propose`` from the seed argument via
:func:`repro.random_utils.derive_generator`, so equal seeds give
bit-identical schedules regardless of construction order or how many
times an instance is reused (the seed-plumbing contract the old
pair-only :class:`~repro.core.policies.RandomPolicy` default violated).

The five pair policies from the paper's limit study port through
:class:`GreedyGroupPolicy`, which generalizes their greedy
partner-picking to group filling; :class:`RandomNPolicy`,
:class:`IPCPackingPolicy` and :class:`DVFSMarginPolicy` are new axes:
shuffle-and-chunk control, solo-IPC load balancing, and guardband
headroom at reduced margins (PAPERS.md: the dim-silicon / reduced-margin
DVFS line of work).
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

import numpy as np

from repro.arena.schedule import Schedule, group_sizes
from repro.core.policies import (
    DroopPolicy,
    HybridPolicy,
    IPCPolicy,
    RandomPolicy,
    SchedulingPolicy,
    StallRatioPolicy,
)
from repro.core.scheduler import Group, GroupOracle
from repro.errors import ConfigurationError, SchedulingError
from repro.pdn import platform
from repro.pdn.undervolt import CRITICAL_VOLTAGE
from repro.random_utils import SeedLike, derive_generator

#: The shipped part's worst-case guardband (Sec. II-C: 14 % of nominal).
WORST_CASE_MARGIN = (
    platform.NOMINAL_VOLTAGE - CRITICAL_VOLTAGE
) / platform.NOMINAL_VOLTAGE


class ArenaPolicy(abc.ABC):
    """Proposes a partition schedule for a job pool on N-core supplies."""

    #: Registry key (stable, kebab-case; doubles as the seed-stream key).
    key: str = "policy"
    #: Human-readable scorecard name.
    name: str = "policy"
    #: Is the proposal independent of group-member order (i.e. driven
    #: only by canonicalized oracle queries)?  Checked dynamically by the
    #: arena property suite.
    symmetric: bool = True

    @abc.abstractmethod
    def propose(
        self,
        programs: Sequence[str],
        n_cores: int,
        oracle: GroupOracle,
        seed: SeedLike,
    ) -> Schedule:
        """Place every program exactly once into groups of ≤ n_cores."""

    def rng(self, seed: SeedLike) -> np.random.Generator:
        """This policy's decorrelated stream for one arena run.

        Derived from the campaign seed and the policy key, so two
        policies in the same run — or the same policy across runs —
        never share entropy.
        """
        return derive_generator(seed, "arena", "policy", self.key)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}()"


def _pool(programs: Sequence[str]) -> List[str]:
    pool = sorted(programs)
    if len(pool) < 2:
        raise SchedulingError("arena pools need at least two programs")
    if len(set(pool)) != len(pool):
        raise SchedulingError("arena pools must not repeat programs")
    return pool


class GreedyGroupPolicy(ArenaPolicy):
    """Greedy partition builder over a core scoring policy.

    The pool is walked in sorted order; the smallest unplaced program
    leads each group and the core policy's :meth:`score_group` picks the
    best extension until the group fills.  Candidate groups are
    canonicalized (sorted) before scoring, so deterministic scorers are
    order-invariant by construction.
    """

    @abc.abstractmethod
    def scorer(self, seed: SeedLike) -> SchedulingPolicy:
        """The core policy that scores candidate group extensions."""

    def propose(
        self,
        programs: Sequence[str],
        n_cores: int,
        oracle: GroupOracle,
        seed: SeedLike,
    ) -> Schedule:
        remaining = _pool(programs)
        sizes = list(group_sizes(len(remaining), n_cores))
        scorer = self.scorer(seed)
        groups: List[Group] = []
        for size in sizes:
            group = [remaining.pop(0)]
            while len(group) < size:
                scores = np.array([
                    scorer.score_group(
                        tuple(sorted([*group, candidate])), oracle
                    )
                    for candidate in remaining
                ])
                group.append(remaining.pop(int(np.argmax(scores))))
            groups.append(tuple(sorted(group)))
        return Schedule(
            policy=self.key, n_cores=n_cores, groups=tuple(groups)
        )


class DroopArenaPolicy(GreedyGroupPolicy):
    """The paper's noise-aware policy: minimize group droop rates."""

    key = "droop"
    name = "Droop"

    def scorer(self, seed: SeedLike) -> SchedulingPolicy:
        return DroopPolicy()


class IPCArenaPolicy(GreedyGroupPolicy):
    """Pure contention-aware throughput: maximize group IPC."""

    key = "ipc"
    name = "IPC"

    def scorer(self, seed: SeedLike) -> SchedulingPolicy:
        return IPCPolicy()


class HybridArenaPolicy(GreedyGroupPolicy):
    """The paper's IPC/Droop^n balance."""

    key = "hybrid"

    def __init__(self, exponent: float = 1.0) -> None:
        self.exponent = float(exponent)
        self.name = HybridPolicy(exponent).name

    def scorer(self, seed: SeedLike) -> SchedulingPolicy:
        return HybridPolicy(self.exponent)


class StallArenaPolicy(GreedyGroupPolicy):
    """Deployable droop avoidance from solo stall-ratio counters."""

    key = "stall"
    name = "StallRatio"

    def scorer(self, seed: SeedLike) -> SchedulingPolicy:
        return StallRatioPolicy()


class RandomArenaPolicy(GreedyGroupPolicy):
    """The control: random greedy placement, campaign-seeded.

    The ported pair policy, with its seed plumbing fixed: the stream
    comes from the arena seed via :meth:`ArenaPolicy.rng`, never from
    :class:`~repro.core.policies.RandomPolicy`'s library-wide default.
    """

    key = "random"
    name = "Random"
    symmetric = False

    def scorer(self, seed: SeedLike) -> SchedulingPolicy:
        return RandomPolicy(seed=self.rng(seed))


class RandomNPolicy(ArenaPolicy):
    """Shuffle-and-chunk: one uniform random partition.

    Unlike :class:`RandomArenaPolicy` (random *scores* inside the greedy
    walk), this draws a whole partition at once — the natural N-core
    null model for regret comparisons.
    """

    key = "random-n"
    name = "RandomN"
    symmetric = False

    def propose(
        self,
        programs: Sequence[str],
        n_cores: int,
        oracle: GroupOracle,
        seed: SeedLike,
    ) -> Schedule:
        pool = _pool(programs)
        permutation = self.rng(seed).permutation(len(pool))
        order = [pool[int(i)] for i in permutation]
        groups: List[Group] = []
        start = 0
        for size in group_sizes(len(order), n_cores):
            groups.append(tuple(sorted(order[start:start + size])))
            start += size
        return Schedule(
            policy=self.key, n_cores=n_cores, groups=tuple(groups)
        )


class IPCPackingPolicy(ArenaPolicy):
    """Balance solo IPC across groups (serpentine load packing).

    Orders the pool by solo throughput and deals it boustrophedon over
    the groups, so every supply carries a comparable current load —
    the classic cluster bin-packing heuristic, using only per-program
    knowledge (no group measurements).
    """

    key = "ipc-packing"
    name = "IPCPacking"

    def propose(
        self,
        programs: Sequence[str],
        n_cores: int,
        oracle: GroupOracle,
        seed: SeedLike,
    ) -> Schedule:
        pool = _pool(programs)
        order = sorted(
            pool, key=lambda name: (-oracle.solo_ipc_metric(name), name)
        )
        n_groups = len(group_sizes(len(pool), n_cores))
        bins: List[List[str]] = [[] for _ in range(n_groups)]
        forward = True
        for start in range(0, len(order), n_groups):
            deal = range(n_groups) if forward else range(n_groups - 1, -1, -1)
            chunk = order[start:start + n_groups]
            for program, index in zip(chunk, deal):
                bins[index].append(program)
            forward = not forward
        groups = tuple(sorted(tuple(sorted(b)) for b in bins if b))
        return Schedule(policy=self.key, n_cores=n_cores, groups=groups)


class MarginHeadroomPolicy(SchedulingPolicy):
    """Core scorer: guardband headroom at a reduced operating margin."""

    name = "MarginHeadroom"

    def __init__(self, guardband_fraction: float = 0.5) -> None:
        if not 0 < guardband_fraction <= 1:
            raise ConfigurationError(
                "guardband_fraction must be in (0, 1]"
            )
        self.margin = guardband_fraction * WORST_CASE_MARGIN

    def score_group(
        self, group: Tuple[str, ...], oracle: GroupOracle
    ) -> float:
        return self.margin - oracle.max_droop_metric(*group)


class DVFSMarginPolicy(GreedyGroupPolicy):
    """Maximize margin headroom at a reduced guardband.

    Scores each group by how far its deepest droop stays inside a
    guardband *smaller* than the shipped worst case (default: half the
    14 % margin of Sec. II-C) — the placement that lets DVFS undervolt
    furthest without tripping the critical voltage
    (:mod:`repro.pdn.undervolt`).
    """

    key = "dvfs-margin"
    name = "DVFSMargin"

    def __init__(self, guardband_fraction: float = 0.5) -> None:
        self.guardband_fraction = float(guardband_fraction)

    def scorer(self, seed: SeedLike) -> SchedulingPolicy:
        return MarginHeadroomPolicy(self.guardband_fraction)
