"""Known bug: accumulates scaled windows one ``append`` at a time.

Every element is the same arithmetic on the previous batch, so the
whole result is one vectorized expression; growing a Python list row by
row keeps the work in the interpreter and the batch unstackable.
"""

from __future__ import annotations

from typing import List, Sequence


def simulate(windows: Sequence[float], gain: float) -> List[float]:
    scaled: List[float] = []
    for window in windows:
        scaled.append(window * gain)  # expect: PERF002
    return scaled
