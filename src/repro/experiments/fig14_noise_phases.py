"""Fig. 14 — single-core droop activity over full program executions.

Paper (Proc3, 2.3 % characterization margin, one point per 60 s interval):
482.sphinx shows *no* phases (flat ~100 droops/1K cycles); 416.gamess
steps through four phases between ~60 and ~100; 465.tonto oscillates
strongly between regimes every few tens of seconds.
"""

from __future__ import annotations

from typing import Dict

from repro.core.phases import (
    NoiseTimeline,
    count_phase_changes,
    measure_noise_timeline,
    oscillation_period_intervals,
)
from repro.experiments.common import ExperimentResult
from repro.uarch.chip import Chip
from repro.workloads.spec import spec_benchmark

EXEMPLARS = ("sphinx", "gamess", "tonto")


def run(quick: bool = False, config: str = "Proc3") -> ExperimentResult:
    chip = Chip(config, with_ripple=True)
    window_cycles = 20_000 if quick else 30_000
    max_intervals = 12 if quick else None

    timelines: Dict[str, NoiseTimeline] = {}
    for name in EXEMPLARS:
        workload = spec_benchmark(name)
        timelines[name] = measure_noise_timeline(
            workload,
            chip,
            interval_seconds=60.0 if not quick else workload.duration_seconds / 12,
            window_cycles=window_cycles,
            seed=7,
            max_intervals=max_intervals,
        )

    result = ExperimentResult(
        experiment_id="Fig. 14",
        title="Droop activity per 60 s interval across full executions",
        columns=("benchmark", "intervals", "mean droops/1K", "span",
                 "phase changes", "oscillation period (intervals)"),
    )
    for name in EXEMPLARS:
        timeline = timelines[name]
        shift = max(timeline.span() * 0.35, 10.0)
        changes = count_phase_changes(
            timeline.droops_per_1k, min_shift=shift, smooth=1
        )
        period = oscillation_period_intervals(timeline.droops_per_1k)
        result.add_row(
            name,
            timeline.times_s.size,
            timeline.mean_level(),
            timeline.span(),
            changes,
            period if period is not None else "-",
        )
    result.series["timelines"] = timelines
    result.notes.append(
        "paper: sphinx flat (~100/1K, no phases), gamess 4 phase changes "
        "(60-100/1K), tonto oscillates every few tens of seconds"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
