"""Fixture: PERF-rule violations, analyzed via ``flow_paths`` as one project.

``# expect: CODE`` markers declare the exact finding set the dataflow
engine must produce for this file (see tests/analysis/test_flow.py).
The ``simulate`` entry point below is hot by qualname suffix, and each
statement inside trips a different performance smell: a Python-level
per-cycle loop, an allocation inside it, a numpy-stackable append
accumulation, an unbatched IIR filter call, and an O(n²) list
membership test.
"""

from __future__ import annotations

from typing import List

from scipy import signal


def simulate(trace, chunks, sos):
    rows: List[float] = []
    seen: List[int] = []
    total = 0.0
    for sample in trace:  # expect: PERF001
        total = total + sample
        scratch = [total]  # expect: PERF004
        total = total + scratch[0]
    for chunk in chunks:
        rows.append(chunk * 2.0)  # expect: PERF002
        filtered = signal.sosfilt(sos, chunk)  # expect: PERF003
        total = total + filtered[0]
    for index in range(8):
        if index in seen:  # expect: PERF005
            continue
        seen.append(index)
    return rows, total
