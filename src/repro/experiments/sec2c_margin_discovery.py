"""Sec. II-C — worst-case operating margin discovery by undervolting.

The paper finds the Core 2 Duo's worst-case margin to be ~14 % below
nominal by undervolting at fixed frequency until the machine fails
stress-testing under multiple power-virus copies.  The simulated version
walks the regulator set-point down with both cores running the
phase-locked virus and finds the first set-point whose worst droop dips
below the critical-path voltage; the derived guardband is the platform's
``WORST_CASE_MARGIN`` constant.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.pdn.platform import WORST_CASE_MARGIN
from repro.pdn.undervolt import CRITICAL_VOLTAGE, undervolt_to_failure


def run(quick: bool = False, config: str = "Proc100") -> ExperimentResult:
    result_data = undervolt_to_failure(
        config=config,
        n_cycles=30_000 if quick else 60_000,
    )
    result = ExperimentResult(
        experiment_id="Sec. II-C",
        title=f"Worst-case margin discovery by undervolting ({config})",
        columns=("quantity", "value"),
    )
    result.add_row("critical voltage (V)", CRITICAL_VOLTAGE)
    result.add_row("virus droop at nominal (%)",
                   100 * result_data.virus_droop_fraction)
    result.add_row("safe undervolt headroom (%)",
                   100 * result_data.headroom)
    result.add_row("derived worst-case margin (%)",
                   100 * result_data.worst_case_margin)
    result.add_row("platform WORST_CASE_MARGIN (%)",
                   100 * WORST_CASE_MARGIN)
    result.series["result"] = result_data
    total = result_data.headroom + result_data.virus_droop_fraction
    result.notes.append(
        f"undervolt headroom ({result_data.headroom:.1%}) + virus droop "
        f"({result_data.virus_droop_fraction:.1%}) = {total:.1%} — the "
        "virus consumes most of the ~14% guardband, undervolting finds "
        "the remainder (paper: margin ~14%)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
