"""Fig. 18 — scheduling-policy scatter: droops vs performance vs SPECrate.

Paper: normalized to SPECrate at (1, 1) — random schedules cluster at the
centre; IPC scheduling improves performance but sits at the random
schedules' droop level; Droop scheduling minimizes droops (Q1, with even a
slight performance gain); the IPC/Droop^n hybrids trace a Pareto frontier
between the two.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.policies import (
    DroopPolicy,
    HybridPolicy,
    IPCPolicy,
    RandomPolicy,
)
from repro.core.scheduler import BatchScheduler, PairOracle
from repro.experiments.common import ExperimentResult
from repro.experiments.context import get_campaign, spec_names, window_cycles

N_RANDOM_SCHEDULES_FULL = 100
N_RANDOM_SCHEDULES_QUICK = 15


def run(quick: bool = False, config: str = "Proc3") -> ExperimentResult:
    campaign = get_campaign(config, n_cycles=window_cycles(quick))
    names = spec_names(quick)
    oracle = PairOracle(campaign)
    oracle.prefetch(names)  # one parallel fan-out; scoring hits the memo
    scheduler = BatchScheduler(oracle, programs=names)
    n_pairs = 20 if quick else 50

    baseline = scheduler.evaluate(
        scheduler.specrate_schedule(), policy_name="SPECrate"
    )

    points: Dict[str, Tuple[float, float]] = {}
    for policy in (DroopPolicy(), IPCPolicy(), HybridPolicy(1.0)):
        evaluation = scheduler.run_policy(policy, n_pairs=n_pairs, seed=13)
        points[policy.name] = evaluation.normalized_to(baseline)

    n_random = N_RANDOM_SCHEDULES_QUICK if quick else N_RANDOM_SCHEDULES_FULL
    random_points: List[Tuple[float, float]] = []
    for i in range(n_random):
        evaluation = scheduler.run_policy(
            RandomPolicy(seed=1000 + i), n_pairs=n_pairs, seed=1000 + i
        )
        random_points.append(evaluation.normalized_to(baseline))

    result = ExperimentResult(
        experiment_id="Fig. 18",
        title=f"Policy impact: droops vs performance relative to SPECrate ({config})",
        columns=("policy", "droops (rel.)", "performance (rel.)"),
    )
    for name, (droops, perf) in points.items():
        result.add_row(name, droops, perf)
    import numpy as np

    random_mean = (
        float(np.mean([p[0] for p in random_points])),
        float(np.mean([p[1] for p in random_points])),
    )
    result.add_row("Random (mean of %d)" % n_random, *random_mean)
    result.series["points"] = points
    result.series["random_points"] = random_points
    result.series["random_mean"] = random_mean
    result.notes.append(
        "paper: Random ~ centre, IPC better perf at random-level droops, "
        "Droop in Q1 (fewest droops, slight perf gain)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
