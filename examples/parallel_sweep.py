#!/usr/bin/env python
"""Parallel campaign execution with a persistent result cache.

Walks through the executor layer that backs every experiment harness:

1. run a scaled-down pairing sweep serially (cold cache),
2. run the identical sweep fanned out over worker processes and verify
   the results are *bit-identical* — every run derives its random stream
   from (seed, run spec) alone, so execution order and process placement
   cannot change a single sample,
3. replay the sweep from the warm on-disk cache with zero re-simulations
   (what `repro-experiments report` does on a second invocation).

Run:  python examples/parallel_sweep.py

The CLI exposes the same knobs: `--jobs N`, `--cache-dir PATH`,
`--no-cache` (environment: `REPRO_JOBS`, `REPRO_CACHE_DIR`,
`REPRO_NO_CACHE`).
"""

import tempfile
import time

from repro import observability
from repro.measurement import (
    MeasurementCampaign,
    ResultCache,
    measurements_identical,
)

#: A miniature pairing sweep: 4x4 multi-program pairs + 4 singles.
SUBSET = ("mcf", "lbm", "namd", "sjeng")
WINDOW_CYCLES = 10_000
SEED = 0


def sweep(campaign):
    return campaign.single_threaded_runs(SUBSET) + campaign.multiprogram_runs(
        SUBSET
    )


def print_metrics(session) -> None:
    """Deterministic counters collected across all three phases.

    These totals are identical whichever phase count you re-run with —
    serial, parallel, warm — because content metrics are recorded from
    the returned measurements, not from where the work happened.
    """
    registry = session.metrics
    print()
    print("metrics (deterministic counters)")
    for metric in (
        "repro_runs_total",
        "repro_run_cycles_total",
        "repro_runs_simulated_total",
        "repro_cache_hits_total",
    ):
        print(f"  {metric:30s} = {int(registry.counter_value(metric))}")
    droop_counters = registry.counters_matching("repro_droop_events_total")
    for sample in sorted(droop_counters):
        print(f"  {sample:30s} = {int(droop_counters[sample])}")
    print(f"  spans recorded (incl. worker)  = {session.tracer.span_count}")


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-sweep-cache-")
    with observability.capture() as session:
        run_phases(cache_dir)
    print_metrics(session)


def run_phases(cache_dir: str) -> None:

    # --- 1. serial, cold cache -----------------------------------------
    serial = MeasurementCampaign(
        "Proc3", n_cycles=WINDOW_CYCLES, seed=SEED,
        jobs=1, cache=ResultCache(cache_dir),
    )
    started = time.perf_counter()
    serial_runs = sweep(serial)
    serial_s = time.perf_counter() - started
    print(f"serial cold sweep   : {len(serial_runs)} runs in {serial_s:.2f} s")
    print(f"                      {serial.executor.stats.summary()}")

    # --- 2. parallel, no cache: bit-identical to serial ----------------
    parallel = MeasurementCampaign(
        "Proc3", n_cycles=WINDOW_CYCLES, seed=SEED, jobs=4
    )
    started = time.perf_counter()
    parallel_runs = sweep(parallel)
    parallel_s = time.perf_counter() - started
    identical = all(
        measurements_identical(a, b)
        for a, b in zip(serial_runs, parallel_runs)
    )
    print(f"parallel (4 jobs)   : {len(parallel_runs)} runs in "
          f"{parallel_s:.2f} s")
    print(f"bit-identical       : {identical}")

    # --- 3. warm cache: zero re-simulations ----------------------------
    warm = MeasurementCampaign(
        "Proc3", n_cycles=WINDOW_CYCLES, seed=SEED,
        jobs=1, cache=ResultCache(cache_dir),
    )
    started = time.perf_counter()
    warm_runs = sweep(warm)
    warm_s = time.perf_counter() - started
    replayed = all(
        measurements_identical(a, b) for a, b in zip(serial_runs, warm_runs)
    )
    stats = warm.executor.stats
    print(f"warm-cache replay   : {len(warm_runs)} runs in {warm_s:.2f} s "
          f"({stats.cache.hits} cache hits, {stats.simulated} simulated)")
    print(f"replay identical    : {replayed}")
    print(f"cache directory     : {cache_dir}")

    if not (identical and replayed and stats.simulated == 0):
        raise SystemExit("executor equivalence violated")


if __name__ == "__main__":
    main()
