"""Tests for undervolting-based worst-case margin discovery (Sec. II-C)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.pdn import undervolt as undervolt_module
from repro.pdn.platform import NOMINAL_VOLTAGE, WORST_CASE_MARGIN
from repro.pdn.undervolt import (
    CRITICAL_VOLTAGE,
    undervolt_to_failure,
)


@pytest.fixture(scope="module")
def result():
    return undervolt_to_failure(n_cycles=40_000)


class TestMarginDiscovery:
    def test_derived_margin_matches_platform_constant(self, result):
        """The shipped WORST_CASE_MARGIN constant is the derived quantity."""
        assert result.worst_case_margin == pytest.approx(
            WORST_CASE_MARGIN, abs=0.005
        )

    def test_headroom_plus_droop_accounts_for_guardband(self, result):
        """Undervolt headroom + the virus's own droop ≈ the guardband:
        the virus eats most of the margin, undervolting finds the rest."""
        total = result.failing_undervolt + result.virus_droop_fraction
        assert total == pytest.approx(result.worst_case_margin, abs=0.015)

    def test_failure_is_reached(self, result):
        assert result.min_voltages[-1] < CRITICAL_VOLTAGE
        assert np.all(result.min_voltages[:-1] >= CRITICAL_VOLTAGE)

    def test_min_voltage_decreases_with_undervolt(self, result):
        assert np.all(np.diff(result.min_voltages) < 0)

    def test_headroom_is_meaningful_but_limited(self, result):
        """Some undervolt is safe (margins are conservative), but far less
        than the full guardband (the virus claims the rest)."""
        assert 0.01 <= result.headroom <= 0.12
        assert result.headroom < result.worst_case_margin

    def test_nominal_set_point_first(self, result):
        assert result.set_points[0] == pytest.approx(NOMINAL_VOLTAGE)


class TestValidation:
    def test_bad_step(self):
        with pytest.raises(ConfigurationError):
            undervolt_to_failure(step=0)

    def test_bad_ceiling(self):
        with pytest.raises(ConfigurationError):
            undervolt_to_failure(max_undervolt=0.9)

    def test_bad_refine_steps(self):
        with pytest.raises(ConfigurationError):
            undervolt_to_failure(refine_steps=-1)

    def test_unreachable_failure_raises(self):
        with pytest.raises(SimulationError):
            undervolt_to_failure(
                n_cycles=20_000, critical_voltage=0.5, max_undervolt=0.02
            )


class TestEdgeRefinement:
    def test_refined_edge_stays_inside_the_coarse_bracket(self):
        coarse = undervolt_to_failure(n_cycles=20_000, step=0.01)
        refined = undervolt_to_failure(
            n_cycles=20_000, step=0.01, refine_steps=6
        )
        # Bisection sharpens the edge within the last coarse step and
        # never moves it back above the coarse failing point.
        assert refined.failing_undervolt <= coarse.failing_undervolt
        assert refined.failing_undervolt > coarse.failing_undervolt - 0.01
        # Probes are not part of the recorded walk: the monotone coarse
        # arrays are identical whether or not refinement ran.
        np.testing.assert_array_equal(
            refined.set_points, coarse.set_points
        )
        np.testing.assert_array_equal(
            refined.min_voltages, coarse.min_voltages
        )

    def test_bracket_exhaustion_keeps_zero_headroom(self):
        # A critical voltage above the nominal-set-point minimum fails on
        # the very first probe: there is no safe bracket to bisect, so
        # the coarse answer — zero headroom — is returned unrefined.
        result = undervolt_to_failure(
            n_cycles=20_000, critical_voltage=1.5, refine_steps=8
        )
        assert result.failing_undervolt == 0.0  # simlint: disable=HYG001 (exact by construction)
        assert result.headroom == 0.0  # simlint: disable=HYG001 (exact by construction)
        assert len(result.set_points) == 1

    def test_non_monotone_droop_response_raises(self, monkeypatch):
        # Fake a PDN whose worst die voltage *rises* as the set-point
        # falls — physically impossible for the linear model, so the
        # walk must refuse to report a margin.
        responses = iter([(1.25, 0.04), (1.26, 0.04), (1.27, 0.04)])

        def broken_pdn(config, current, supply_volt, with_ripple, seed):
            return next(responses)

        monkeypatch.setattr(
            undervolt_module, "_min_voltage_volt", broken_pdn
        )
        with pytest.raises(SimulationError, match="non-monotone"):
            undervolt_to_failure(n_cycles=20_000)
