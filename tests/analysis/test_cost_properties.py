"""Property tests for the cost lattice and its interprocedural fixpoint.

The termination and determinism arguments in
:mod:`repro.analysis.flow.cost` rest on algebraic facts — ``join_cost``
is a semilattice operation, ``lift`` is monotone, and the fixpoint is a
pure function of (intrinsic, edges).  Hypothesis pins each fact
directly rather than trusting the prose.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import flow_sources
from repro.analysis.flow.cost import (
    ALL_WORK_CLASSES,
    BOTTOM,
    DEPTH_CAP,
    CostSummary,
    join_cost,
    lift,
    solve_costs,
)

summaries = st.builds(
    CostSummary,
    depth=st.integers(min_value=0, max_value=DEPTH_CAP),
    work=st.sampled_from(ALL_WORK_CLASSES),
    filters=st.booleans(),
)

names = st.sampled_from([f"f{i}" for i in range(6)])

call_depths = st.integers(min_value=0, max_value=DEPTH_CAP)

graphs = st.dictionaries(
    names,
    st.dictionaries(names, call_depths, max_size=4),
    max_size=6,
)

intrinsics = st.dictionaries(names, summaries, max_size=6)


def leq(a: CostSummary, b: CostSummary) -> bool:
    """The lattice order: componentwise ``<=``."""
    return (
        a.depth <= b.depth
        and a.work <= b.work
        and (not a.filters or b.filters)
    )


class TestJoinSemilattice:
    @settings(max_examples=60, deadline=None)
    @given(a=summaries, b=summaries)
    def test_commutative(self, a, b):
        assert join_cost(a, b) == join_cost(b, a)

    @settings(max_examples=60, deadline=None)
    @given(a=summaries, b=summaries, c=summaries)
    def test_associative(self, a, b, c):
        assert join_cost(join_cost(a, b), c) == join_cost(
            a, join_cost(b, c)
        )

    @settings(max_examples=60, deadline=None)
    @given(a=summaries)
    def test_idempotent_with_bottom_identity(self, a):
        assert join_cost(a, a) == a
        assert join_cost(a, BOTTOM) == a

    @settings(max_examples=60, deadline=None)
    @given(a=summaries, b=summaries)
    def test_upper_bound(self, a, b):
        joined = join_cost(a, b)
        assert leq(a, joined)
        assert leq(b, joined)


class TestLift:
    @settings(max_examples=60, deadline=None)
    @given(a=summaries, b=summaries, depth=call_depths)
    def test_monotone_in_summary(self, a, b, depth):
        if leq(a, b):
            assert leq(lift(a, depth), lift(b, depth))

    @settings(max_examples=60, deadline=None)
    @given(a=summaries, depth=call_depths)
    def test_saturates_at_cap(self, a, depth):
        lifted = lift(a, depth)
        assert lifted.depth <= DEPTH_CAP
        assert lifted.work == a.work
        assert lifted.filters == a.filters

    @settings(max_examples=60, deadline=None)
    @given(a=summaries)
    def test_zero_depth_is_identity(self, a):
        assert lift(a, 0) == a


class TestFixpoint:
    @settings(max_examples=60, deadline=None)
    @given(intrinsic=intrinsics, edges=graphs)
    def test_solution_contains_intrinsic(self, intrinsic, edges):
        solved = solve_costs(intrinsic, edges)
        for name, summary in intrinsic.items():
            assert leq(summary, solved[name])

    @settings(max_examples=60, deadline=None)
    @given(intrinsic=intrinsics, edges=graphs)
    def test_solution_is_a_fixpoint(self, intrinsic, edges):
        """Re-applying one propagation step changes nothing."""
        solved = solve_costs(intrinsic, edges)
        for name in solved:
            summary = intrinsic.get(name, BOTTOM)
            for callee, depth in edges.get(name, {}).items():
                summary = join_cost(
                    summary, lift(solved.get(callee, BOTTOM), depth)
                )
            assert solved[name] == summary

    @settings(max_examples=60, deadline=None)
    @given(intrinsic=intrinsics, edges=graphs, extra=summaries,
           target=names)
    def test_monotone_in_intrinsic(self, intrinsic, edges, extra, target):
        """Growing one intrinsic summary never shrinks any solution."""
        grown = dict(intrinsic)
        grown[target] = join_cost(grown.get(target, BOTTOM), extra)
        before = solve_costs(intrinsic, edges)
        after = solve_costs(grown, edges)
        for name in before:
            assert leq(before[name], after.get(name, before[name]))

    @settings(max_examples=60, deadline=None)
    @given(intrinsic=intrinsics, edges=graphs)
    def test_deterministic_and_insertion_order_independent(
        self, intrinsic, edges
    ):
        reversed_intrinsic = dict(reversed(list(intrinsic.items())))
        reversed_edges = {
            name: dict(reversed(list(out.items())))
            for name, out in reversed(list(edges.items()))
        }
        assert solve_costs(intrinsic, edges) == solve_costs(
            reversed_intrinsic, reversed_edges
        )


class TestPassDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        names=st.lists(
            st.sampled_from(["alpha", "beta", "gamma", "delta"]),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    def test_findings_independent_of_module_insertion_order(self, names):
        """The same project yields the same findings however it is fed."""
        template = (
            "def simulate(trace_{n}):\n"
            "    total = 0.0\n"
            "    for sample in trace_{n}:\n"
            "        total = total + sample\n"
            "    return total\n"
        )
        forward = {
            f"proj/{n}.py": template.replace("{n}", n) for n in names
        }
        backward = {
            f"proj/{n}.py": template.replace("{n}", n)
            for n in reversed(names)
        }
        to_tuples = lambda fs: [  # noqa: E731
            (f.code, f.path, f.line, f.message) for f in fs
        ]
        assert to_tuples(flow_sources(forward)) == to_tuples(
            flow_sources(backward)
        )
        assert len(flow_sources(forward)) == len(names)
