"""Unit tests for the power virus and the impedance loop."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.workloads.virus import PowerVirus, SteppedCurrentLoop


class TestPowerVirus:
    def test_toggles_between_levels(self):
        virus = PowerVirus(slow_period_cycles=0)
        window = virus.sample_window(1000)
        values = np.unique(window.baseline_activity)
        assert set(np.round(values, 3)) == {0.05, 1.0}

    def test_fast_period(self):
        virus = PowerVirus(toggle_period_cycles=10, slow_period_cycles=0)
        window = virus.sample_window(100)
        assert np.array_equal(
            window.baseline_activity[:10], window.baseline_activity[10:20]
        )

    def test_slow_envelope_parks_low(self):
        virus = PowerVirus(toggle_period_cycles=10, slow_period_cycles=200)
        window = virus.sample_window(400)
        # Second half of each slow period is all-low.
        assert np.all(window.baseline_activity[100:200] == 0.05)  # simlint: disable=HYG001 (exact by construction)
        assert window.baseline_activity[:100].max() == 1.0  # simlint: disable=HYG001 (exact by construction)

    def test_copies_are_phase_locked(self):
        virus = PowerVirus()
        a = virus.sample_window(5000, rng=1)
        b = virus.sample_window(5000, rng=99)
        assert np.array_equal(a.baseline_activity, b.baseline_activity)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerVirus(toggle_period_cycles=1)
        with pytest.raises(ConfigurationError):
            PowerVirus(low_activity=0.9, high_activity=0.5)
        with pytest.raises(ConfigurationError):
            PowerVirus().sample_window(0)


class TestSteppedCurrentLoop:
    def test_period_from_frequency(self):
        loop = SteppedCurrentLoop(frequency_hz=1 * units.MEGA_HERTZ, clock_hz=2 * units.GIGA_HERTZ)
        assert loop.period_cycles == 2000

    def test_square_wave_shape(self):
        loop = SteppedCurrentLoop(frequency_hz=1 * units.MEGA_HERTZ, clock_hz=100 * units.MEGA_HERTZ)
        window = loop.sample_window(1000)
        activity = window.baseline_activity
        assert activity[:50].max() == loop.high_activity
        assert activity[50:100].min() == loop.low_activity

    def test_too_high_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            SteppedCurrentLoop(frequency_hz=2 * units.GIGA_HERTZ, clock_hz=2 * units.GIGA_HERTZ)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SteppedCurrentLoop(frequency_hz=0, clock_hz=1 * units.GIGA_HERTZ)
        with pytest.raises(ConfigurationError):
            SteppedCurrentLoop(
                frequency_hz=1 * units.MEGA_HERTZ, clock_hz=1 * units.GIGA_HERTZ,
                low_activity=0.9, high_activity=0.5,
            )
