"""Unit tests for workload abstractions and window synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, WorkloadError
from repro.uarch.events import StallEvent
from repro.workloads.base import (
    BurstModel,
    PhasedWorkload,
    PhaseSegment,
    StatisticalWorkload,
    StatProfile,
    synthesize_window,
)


def profile(activity=0.7, sigma=0.05, rates=None, burst=None, ipc=1.5):
    return StatProfile(
        mean_activity=activity,
        activity_sigma=sigma,
        event_rates=rates or {},
        burst=burst,
        base_ipc=ipc,
    )


class TestBurstModel:
    def test_duty_cycle_matches_fraction(self):
        burst = BurstModel(memory_fraction=0.3, dwell_cycles=500)
        rng = np.random.default_rng(0)
        states = burst.state_series(200_000, rng)
        assert states.mean() == pytest.approx(0.3, abs=0.06)

    def test_zero_fraction_never_memory_bound(self):
        burst = BurstModel(memory_fraction=0.0)
        states = burst.state_series(1000, np.random.default_rng(0))
        assert not states.any()

    def test_dwell_scale(self):
        burst = BurstModel(memory_fraction=0.5, dwell_cycles=1000)
        rng = np.random.default_rng(1)
        states = burst.state_series(300_000, rng)
        transitions = np.count_nonzero(np.diff(states.astype(int)))
        # Mean dwell ~1000 cycles -> ~300 transitions over 300k cycles.
        assert 150 <= transitions <= 600

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstModel(memory_fraction=1.0)
        with pytest.raises(ConfigurationError):
            BurstModel(dwell_cycles=0)
        with pytest.raises(ConfigurationError):
            BurstModel(activity_drop=0)
        with pytest.raises(ConfigurationError):
            BurstModel(event_boost=0.5)


class TestStatProfile:
    def test_rate_lookup(self):
        p = profile(rates={StallEvent.L2_MISS: 0.001})
        assert p.rate(StallEvent.L2_MISS) == 0.001  # simlint: disable=HYG001 (exact by construction)
        assert p.rate(StallEvent.L1_MISS) == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_expected_stall_ratio_monotone_in_rates(self):
        low = profile(rates={StallEvent.L2_MISS: 0.0005})
        high = profile(rates={StallEvent.L2_MISS: 0.002})
        assert high.expected_stall_ratio() > low.expected_stall_ratio()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            profile(activity=0.0)
        with pytest.raises(ConfigurationError):
            profile(sigma=-0.1)
        with pytest.raises(ConfigurationError):
            StatProfile(mean_activity=0.5, event_rates={StallEvent.L1_MISS: -1})
        with pytest.raises(ConfigurationError):
            StatProfile(mean_activity=0.5, event_rates={"L1": 0.1})


class TestSynthesizeWindow:
    def test_mean_activity_near_target(self):
        window = synthesize_window(profile(activity=0.7, sigma=0.02), 50_000, rng=0)
        assert window.baseline_activity.mean() == pytest.approx(0.7, abs=0.05)

    def test_event_rate_realized(self):
        p = profile(rates={StallEvent.L1_MISS: 0.01})
        window = synthesize_window(p, 100_000, rng=1)
        realized = window.event_count(StallEvent.L1_MISS) / 100_000
        assert realized == pytest.approx(0.01, rel=0.2)

    def test_burst_preserves_long_run_event_rate(self):
        burst = BurstModel(memory_fraction=0.4, dwell_cycles=1000, event_boost=6.0)
        p = profile(rates={StallEvent.L2_MISS: 0.002}, burst=burst)
        window = synthesize_window(p, 200_000, rng=2)
        realized = window.event_count(StallEvent.L2_MISS) / 200_000
        assert realized == pytest.approx(0.002, rel=0.25)

    def test_burst_lowers_activity_in_state(self):
        burst = BurstModel(
            memory_fraction=0.5, dwell_cycles=2000, activity_drop=0.4
        )
        p = profile(activity=0.8, sigma=0.0, burst=burst)
        window = synthesize_window(p, 100_000, rng=3)
        values = np.unique(np.round(window.baseline_activity, 6))
        assert values.min() == pytest.approx(0.32, abs=0.01)
        assert values.max() == pytest.approx(0.8, abs=0.01)

    def test_deterministic_with_seed(self):
        p = profile(rates={StallEvent.L1_MISS: 0.01})
        a = synthesize_window(p, 10_000, rng=42)
        b = synthesize_window(p, 10_000, rng=42)
        assert np.array_equal(a.baseline_activity, b.baseline_activity)
        assert a.events == b.events

    def test_events_sorted(self):
        p = profile(rates={StallEvent.L1_MISS: 0.01, StallEvent.TLB_MISS: 0.002})
        window = synthesize_window(p, 50_000, rng=5)
        cycles = [c for c, _ in window.events]
        assert cycles == sorted(cycles)

    def test_rejects_bad_length(self):
        with pytest.raises(ConfigurationError):
            synthesize_window(profile(), 0)

    @settings(max_examples=20, deadline=None)
    @given(
        activity=st.floats(min_value=0.1, max_value=1.0),
        sigma=st.floats(min_value=0.0, max_value=0.2),
    )
    def test_activity_always_in_bounds(self, activity, sigma):
        window = synthesize_window(
            profile(activity=activity, sigma=sigma), 5000, rng=0
        )
        assert window.baseline_activity.min() >= 0.0
        assert window.baseline_activity.max() <= 1.0


class TestPhasedWorkload:
    def segments(self):
        return [
            PhaseSegment(100, profile(activity=0.9), name="hot"),
            PhaseSegment(200, profile(activity=0.4), name="cold"),
        ]

    def test_profile_at_selects_segment(self):
        workload = PhasedWorkload("w", self.segments())
        assert workload.profile_at(50).mean_activity == 0.9  # simlint: disable=HYG001 (exact by construction)
        assert workload.profile_at(150).mean_activity == 0.4  # simlint: disable=HYG001 (exact by construction)

    def test_clamps_past_end_without_repeat(self):
        workload = PhasedWorkload("w", self.segments())
        assert workload.profile_at(10_000).mean_activity == 0.4  # simlint: disable=HYG001 (exact by construction)

    def test_repeat_wraps(self):
        workload = PhasedWorkload(
            "w", self.segments(), repeat=True, total_duration_seconds=10_000
        )
        assert workload.cycle_seconds == 300
        assert workload.profile_at(300 + 50).mean_activity == 0.9  # simlint: disable=HYG001 (exact by construction)
        assert workload.duration_seconds == 10_000

    def test_negative_time_rejected(self):
        workload = PhasedWorkload("w", self.segments())
        with pytest.raises(WorkloadError):
            workload.profile_at(-1)

    def test_needs_segments(self):
        with pytest.raises(WorkloadError):
            PhasedWorkload("w", [])

    def test_sample_window_uses_active_phase(self):
        workload = PhasedWorkload("w", self.segments())
        hot = workload.sample_window(20_000, rng=1, at_time_s=10)
        cold = workload.sample_window(20_000, rng=1, at_time_s=200)
        assert hot.baseline_activity.mean() > cold.baseline_activity.mean()


class TestStatisticalWorkload:
    def test_duration_and_label(self):
        workload = StatisticalWorkload("x", profile(), duration_seconds=123)
        assert workload.duration_seconds == 123
        window = workload.sample_window(1000, rng=0)
        assert window.label == "x"

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            StatisticalWorkload("x", profile(), duration_seconds=0)
