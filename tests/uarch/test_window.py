"""Unit tests for ExecutionWindow."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch.events import StallEvent
from repro.uarch.window import ExecutionWindow


class TestExecutionWindow:
    def test_basic(self):
        window = ExecutionWindow(
            baseline_activity=np.full(100, 0.5),
            events=[(10, StallEvent.L1_MISS), (20, StallEvent.L1_MISS)],
        )
        assert window.n_cycles == 100
        assert window.event_count(StallEvent.L1_MISS) == 2
        assert window.event_count(StallEvent.L2_MISS) == 0

    def test_rejects_activity_out_of_bounds(self):
        with pytest.raises(ConfigurationError):
            ExecutionWindow(baseline_activity=np.array([0.5, 1.2]))
        with pytest.raises(ConfigurationError):
            ExecutionWindow(baseline_activity=np.array([-0.1, 0.5]))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ExecutionWindow(baseline_activity=np.array([]))

    def test_rejects_event_outside_window(self):
        with pytest.raises(ConfigurationError):
            ExecutionWindow(
                baseline_activity=np.full(10, 0.5),
                events=[(10, StallEvent.L1_MISS)],
            )

    def test_rejects_non_event(self):
        with pytest.raises(ConfigurationError):
            ExecutionWindow(
                baseline_activity=np.full(10, 0.5),
                events=[(1, "L1")],
            )

    def test_rejects_bad_ipc(self):
        with pytest.raises(ConfigurationError):
            ExecutionWindow(baseline_activity=np.full(10, 0.5), base_ipc=0.0)
