"""Known bug: RC time constant computed as R/C instead of R*C.

Dividing ohms by farads does not yield seconds; the function's
unit-suffixed name pins the intended return dimension, so the flow
engine can see the algebra contradict it.
"""

from __future__ import annotations

from repro import units

BULK_RESISTANCE_OHMS = 0.6 * units.MILLI_OHM
BULK_CAPACITANCE_FARADS = 220.0 * units.MICRO_FARAD


def time_constant_seconds(resistance_ohms: float, capacitance_farads: float) -> float:
    return resistance_ohms / capacitance_farads  # expect: DIM004


def settle_window() -> float:
    return 5.0 * time_constant_seconds(
        BULK_RESISTANCE_OHMS, BULK_CAPACITANCE_FARADS
    )
