"""Experiment harnesses — one module per table/figure of the paper.

Every module exposes ``run(quick=...)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows/series
mirror what the paper's figure or table reports, plus ``main()`` for
command-line use (``python -m repro.experiments.fig08_margin_sweep``).

``quick=True`` shrinks workload subsets and window lengths so the whole
suite reruns in minutes; ``quick=False`` runs the full 881-run protocol
sizes.  The benchmark harness in ``benchmarks/`` drives these modules and
asserts the paper's qualitative shape for each experiment.
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
