"""The arena harness: every policy, one suite, one scorecard each.

One :func:`run_arena` call measures a named workload suite on an N-core
campaign, asks every requested policy for a partition schedule, and
scores the schedules on a common footing:

* **throughput** — mean group IPC;
* **droop overhead** — droop events per 1K cycles, and the fraction of
  cycles lost to error recovery at the platform's recovery cost;
* **energy proxy** — relative dynamic energy if each group ran at its
  minimal safe supply (the deeper a group's worst droop, the higher the
  set-point it needs to clear the critical voltage);
* **oracle regret** — droop-rate distance above the exhaustive-search
  optimum (``None`` when the pool is too large to search).

Campaigns come from :mod:`repro.experiments.context` unless a test hands
one in, so arena runs inherit the cached parallel executor, tracing
spans and fault-tolerant retries.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import observability as obs
from repro.arena.oracle import (
    DEFAULT_SEARCH_LIMIT,
    OracleBaseline,
    exhaustive_baseline,
)
from repro.arena.policies import WORST_CASE_MARGIN
from repro.arena.registry import build_policies
from repro.arena.schedule import Schedule, group_sizes, validate_cover
from repro.arena.suites import suite_programs
from repro.core.scheduler import Group, GroupOracle
from repro.errors import SchedulingError
from repro.measurement.campaign import MeasurementCampaign
from repro.pdn import platform
from repro.pdn.undervolt import CRITICAL_VOLTAGE

#: Cycles one error recovery costs (the paper's mid-range rollback
#: mechanism; Tab. I / Fig. 8 sweep 1..100K around it).
DEFAULT_RECOVERY_COST = 100.0

#: Arena defaults: decap config and window length.  Proc3 is the noisy
#: future node where placement matters most; 12K cycles keeps a full
#: suite sweep interactive.
DEFAULT_CONFIG = "Proc3"
DEFAULT_CYCLES = 12_000


@dataclass(frozen=True)
class PolicyScorecard:
    """One policy's scored schedule on one suite."""

    policy: str
    name: str
    schedule: Schedule
    mean_ipc: float
    droops_per_1k: float
    recovery_overhead: float
    energy_proxy: float
    oracle_regret: Optional[float]


@dataclass(frozen=True)
class ArenaResult:
    """One full arena run: context, baseline, and the ranked scorecards."""

    suite: str
    programs: Tuple[str, ...]
    n_cores: int
    config: str
    n_cycles: int
    seed: int
    recovery_cost: float
    oracle: Optional[OracleBaseline]
    scorecards: Tuple[PolicyScorecard, ...]

    def scorecard(self, policy: str) -> PolicyScorecard:
        """Look one policy's scorecard up by registry key."""
        for card in self.scorecards:
            if card.policy == policy:
                return card
        raise SchedulingError(f"no scorecard for policy {policy!r}")


def _prefetch_pool(
    oracle: GroupOracle, pool: Tuple[str, ...], n_cores: int
) -> None:
    """Warm every measurement the policies and baseline may query.

    Solo runs (stall/packing knowledge) plus all sorted groupings of
    each size the greedy builders touch — one executor fan-out, so
    ``--jobs N`` parallelizes the whole arena's measurement load.
    """
    groups: List[Group] = [(name,) for name in pool]
    for size in range(2, min(n_cores, len(pool)) + 1):
        groups.extend(combinations(pool, size))
    oracle.prefetch_groups(groups)


def _energy_proxy(max_droops: Sequence[float]) -> float:
    """Relative dynamic energy at each group's minimal safe set-point.

    A group whose worst droop is ``d`` (fraction of its supply) needs a
    set-point of at least ``V_crit / (1 - d)`` to stay above the
    critical voltage; dynamic energy scales with the square of supply.
    1.0 ≈ every group running at the full worst-case guardband.
    """
    nominal_floor = CRITICAL_VOLTAGE / platform.NOMINAL_VOLTAGE
    levels = [nominal_floor / (1.0 - d) for d in max_droops]
    reference = nominal_floor / (1.0 - WORST_CASE_MARGIN)
    return float(np.mean([(v / reference) ** 2 for v in levels]))


def score_schedule(
    schedule: Schedule,
    oracle: GroupOracle,
    name: str,
    recovery_cost: float,
    baseline: Optional[OracleBaseline],
) -> PolicyScorecard:
    """Score one validated, canonical schedule against the oracle."""
    droops = [oracle.droop_metric(*g) for g in schedule.groups]
    ipcs = [oracle.ipc_metric(*g) for g in schedule.groups]
    max_droops = [oracle.max_droop_metric(*g) for g in schedule.groups]
    droops_per_1k = float(np.mean(droops))
    regret = (
        None
        if baseline is None
        else max(0.0, droops_per_1k - baseline.droops_per_1k)
    )
    return PolicyScorecard(
        policy=schedule.policy,
        name=name,
        schedule=schedule,
        mean_ipc=float(np.mean(ipcs)),
        droops_per_1k=droops_per_1k,
        recovery_overhead=droops_per_1k * recovery_cost / 1000.0,
        energy_proxy=_energy_proxy(max_droops),
        oracle_regret=regret,
    )


def rank(
    scorecards: Sequence[PolicyScorecard],
) -> Tuple[PolicyScorecard, ...]:
    """Deterministic ranking: least droop overhead first.

    Ties break toward higher throughput, then the stable policy key —
    never arrival order.
    """
    return tuple(
        sorted(
            scorecards,
            key=lambda card: (
                card.droops_per_1k,
                -card.mean_ipc,
                card.policy,
            ),
        )
    )


def run_arena(
    suite: str = "micro",
    n_cores: int = 2,
    policies: Optional[Sequence[str]] = None,
    config: str = DEFAULT_CONFIG,
    n_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    recovery_cost: float = DEFAULT_RECOVERY_COST,
    search_limit: int = DEFAULT_SEARCH_LIMIT,
    campaign: Optional[MeasurementCampaign] = None,
) -> ArenaResult:
    """Benchmark every requested policy head-to-head on one suite.

    ``policies=None`` runs the whole registry.  ``campaign=None`` builds
    (or reuses) the shared context campaign for ``config``/``n_cores`` —
    the normal CLI path; tests pass a hermetic campaign instead.  The
    result is bit-identical for equal arguments, whatever the executor's
    job count or cache state.
    """
    pool = suite_programs(suite)
    if n_cores < 2:
        raise SchedulingError("arena needs n_cores >= 2")
    if campaign is None:
        from repro.experiments.context import get_campaign

        campaign = get_campaign(
            config, n_cycles=n_cycles, seed=seed, n_cores=n_cores
        )
    elif campaign.chip.n_cores < n_cores:
        raise SchedulingError(
            f"campaign chip has {campaign.chip.n_cores} cores; "
            f"arena wants {n_cores}"
        )
    arena_policies = build_policies(policies)
    with obs.span(
        "arena.run",
        suite=suite,
        cores=n_cores,
        policies=len(arena_policies),
    ):
        obs.increment("repro_arena_runs_total")
        oracle = GroupOracle(campaign)
        _prefetch_pool(oracle, pool, n_cores)
        baseline = exhaustive_baseline(
            pool, n_cores, oracle, limit=search_limit
        )
        scorecards: List[PolicyScorecard] = []
        for policy in arena_policies:
            schedule = validate_cover(
                policy.propose(pool, n_cores, oracle, seed).canonical(),
                pool,
            )
            obs.increment("repro_arena_policies_total")
            obs.increment(
                "repro_arena_groups_total", len(schedule.groups)
            )
            scorecards.append(
                score_schedule(
                    schedule, oracle, policy.name, recovery_cost, baseline
                )
            )
    return ArenaResult(
        suite=suite,
        programs=pool,
        n_cores=n_cores,
        config=campaign.config,
        n_cycles=campaign.n_cycles,
        seed=seed,
        recovery_cost=float(recovery_cost),
        oracle=baseline,
        scorecards=rank(scorecards),
    )
