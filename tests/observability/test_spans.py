"""Span tree unit tests: nesting, payloads, grafting, error paths."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.observability import NULL_SPAN, NullSpan, SpanRecord, Tracer


def build_small_trace() -> Tracer:
    tracer = Tracer()
    with tracer.span("campaign", {"runs": 2}):
        with tracer.span("run", {"run": "mcf"}):
            with tracer.span("pdn.simulate"):
                pass
        with tracer.span("run", {"run": "lbm"}):
            pass
    return tracer


class TestTracer:
    def test_nesting_mirrors_call_structure(self):
        tracer = build_small_trace()
        assert tracer.structure() == (
            ("campaign", (("run", (("pdn.simulate", ()),)), ("run", ()))),
        )
        assert tracer.span_count == 4

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_durations_recorded(self):
        tracer = build_small_trace()
        durations = [span.duration_seconds for span in tracer.walk()]
        assert all(d >= 0.0 for d in durations)
        # The parent encloses its children.
        root = tracer.roots[0]
        assert root.duration_seconds >= max(
            c.duration_seconds for c in root.children
        )

    def test_annotate_merges_metadata(self):
        tracer = Tracer()
        with tracer.span("stage", {"runs": 1}) as span:
            span.annotate(hits=3)
        assert tracer.roots[0].metadata == {"runs": 1, "hits": 3}

    def test_out_of_order_close_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(ConfigurationError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_empty_span_name_rejected(self):
        with pytest.raises(ConfigurationError):
            SpanRecord("")


class TestPayloads:
    def test_round_trip_preserves_structure(self):
        tracer = build_small_trace()
        payload = tracer.to_payload()
        assert payload["version"] == 1
        assert payload["span_count"] == 4
        rebuilt = [
            SpanRecord.from_payload(root) for root in payload["roots"]
        ]
        assert [r.structure() for r in rebuilt] == list(tracer.structure())

    def test_payload_omits_empty_fields(self):
        record = SpanRecord("leaf")
        payload = record.to_payload()
        assert set(payload) == {"name", "duration_seconds"}

    def test_metadata_keys_sorted(self):
        record = SpanRecord("s", {"zeta": 1, "alpha": 2})
        assert list(record.to_payload()["metadata"]) == ["alpha", "zeta"]


class TestGraft:
    def test_grafted_spans_marked_worker(self):
        worker = Tracer()
        with worker.span("run", {"run": "mcf"}):
            with worker.span("chip.run"):
                pass
        parent = Tracer()
        with parent.span("campaign.batch"):
            parent.graft([root.to_payload() for root in worker.roots])
        grafted = parent.roots[0].children[0]
        assert all(span.worker for span in grafted.walk())
        assert parent.structure() == (
            ("campaign.batch", (("run", (("chip.run", ()),)),)),
        )

    def test_graft_preserves_order(self):
        parent = Tracer()
        payloads = [
            SpanRecord(f"run{i}").to_payload() for i in range(3)
        ]
        with parent.span("batch"):
            parent.graft(payloads)
        names = [c.name for c in parent.roots[0].children]
        assert names == ["run0", "run1", "run2"]


class TestNullSpan:
    def test_shared_singleton(self):
        assert isinstance(NULL_SPAN, NullSpan)

    def test_context_protocol_is_noop(self):
        with NULL_SPAN as span:
            span.annotate(anything="goes")
        assert not hasattr(NULL_SPAN, "__dict__")
