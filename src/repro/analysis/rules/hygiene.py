"""Simulation-hygiene rules (``HYG0xx``).

These are the classic numerical/simulation foot-guns: float equality
(droop thresholds live within 1e-12 of each other), mutable default
arguments (shared state across nominally independent runs), bare or
overbroad ``except`` (swallows the typed :mod:`repro.errors` hierarchy),
mutable config dataclasses (a frozen config is a reproducibility
contract), and missing ``from __future__ import annotations`` (the
repo-wide typing convention).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

_CONFIG_NAME_RE = re.compile(
    r"(Config|Configuration|Parameters|Settings|Options)$"
)

_MUTABLE_FACTORIES = {"list", "dict", "set"}


@register
class FloatEqualityRule(Rule):
    """HYG001: ``==``/``!=`` against a float literal."""

    code = "HYG001"
    name = "float-equality"
    severity = Severity.ERROR
    description = (
        "exact ==/!= against a float literal is fragile under roundoff; "
        "use math.isclose, numpy.isclose, or an ordered guard"
    )
    node_types = (ast.Compare,)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_literal(left) or _is_float_literal(right):
                yield ctx.finding(
                    self,
                    node,
                    "float equality comparison; use math.isclose(...) "
                    "or an ordered guard (<=, >=)",
                )
                return


@register
class MutableDefaultRule(Rule):
    """HYG002: mutable default argument."""

    code = "HYG002"
    name = "mutable-default"
    severity = Severity.ERROR
    description = (
        "list/dict/set defaults are shared across calls; default to None "
        "(or use dataclasses.field(default_factory=...))"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                yield ctx.finding(
                    self,
                    default,
                    f"mutable default argument in {node.name}(); "
                    "use None and construct inside the function",
                )


@register
class OverbroadExceptRule(Rule):
    """HYG003: bare or overbroad exception handler."""

    code = "HYG003"
    name = "overbroad-except"
    severity = Severity.WARNING
    description = (
        "bare `except:` / `except Exception:` swallows the typed "
        "repro.errors hierarchy and hides real failures; catch the "
        "narrowest exception that the block can actually raise"
    )
    node_types = (ast.ExceptHandler,)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        broad = _broad_exception_name(node.type)
        if node.type is None:
            yield ctx.finding(
                self, node, "bare `except:`; name the exception type"
            )
        elif broad is not None:
            yield ctx.finding(
                self,
                node,
                f"overbroad `except {broad}:`; catch a specific exception "
                "(e.g. from repro.errors)",
            )


@register
class UnfrozenConfigDataclassRule(Rule):
    """HYG004: config-style dataclass that is not frozen."""

    code = "HYG004"
    name = "unfrozen-config-dataclass"
    severity = Severity.ERROR
    description = (
        "classes named *Config/*Parameters/*Settings/*Options describe a "
        "run; freezing them (@dataclass(frozen=True)) makes the "
        "description immutable and hashable for caching"
    )
    node_types = (ast.ClassDef,)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        if not _CONFIG_NAME_RE.search(node.name):
            return
        for decorator in node.decorator_list:
            frozen = _dataclass_frozen(decorator, ctx)
            if frozen is None:
                continue
            if not frozen:
                yield ctx.finding(
                    self,
                    decorator,
                    f"config dataclass {node.name} is mutable; use "
                    "@dataclass(frozen=True)",
                )
            return


@register
class MissingFutureAnnotationsRule(Rule):
    """HYG005: module with definitions lacks the ``__future__`` import."""

    code = "HYG005"
    name = "missing-future-annotations"
    severity = Severity.WARNING
    description = (
        "modules that define functions or classes must start with "
        "`from __future__ import annotations` (repo-wide typing "
        "convention; keeps annotations lazy and 3.10-compatible)"
    )

    def check_module(
        self, tree: ast.Module, ctx: FileContext
    ) -> Iterator[Finding]:
        has_defs = any(
            isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
            for node in ast.walk(tree)
        )
        if not has_defs:
            return
        for node in tree.body:
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "__future__"
                and any(a.name == "annotations" for a in node.names)
            ):
                return
        yield Finding(
            code=self.code,
            message=(
                "module defines functions/classes but lacks "
                "`from __future__ import annotations`"
            ),
            path=ctx.path,
            line=1,
            column=0,
            severity=self.severity,
            source_line=ctx.source_line(1),
        )


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_FACTORIES and not node.args
    return False


def _broad_exception_name(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _broad_exception_name(element)
            if name is not None:
                return name
        return None
    if isinstance(node, ast.Name) and node.id in ("Exception", "BaseException"):
        return node.id
    return None


def _dataclass_frozen(
    decorator: ast.AST, ctx: FileContext
) -> Optional[bool]:
    """``True``/``False`` for a dataclass decorator, ``None`` otherwise."""
    call_keywords = []
    target = decorator
    if isinstance(decorator, ast.Call):
        target = decorator.func
        call_keywords = decorator.keywords
    dotted = ctx.dotted_name(target)
    if dotted is None or dotted.split(".")[-1] != "dataclass":
        return None
    for keyword in call_keywords:
        if keyword.arg == "frozen":
            value = keyword.value
            if isinstance(value, ast.Constant):
                return bool(value.value)
            return True  # dynamic frozen=... : give the benefit of the doubt
    return False
