"""Calibration tests pinning the reference platform to the paper's numbers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.pdn import platform
from repro.pdn.decap import ordered_configs
from repro.pdn.impedance import ImpedanceProfile


class TestBuilders:
    def test_build_network_by_name_and_config(self):
        from repro.pdn.decap import proc_config

        by_name = platform.build_network("Proc25")
        by_config = platform.build_network(proc_config("Proc25"))
        assert (
            by_name.stages[1].decap.capacitance
            == by_config.stages[1].decap.capacitance
        )

    def test_package_capacitor_includes_parasitics(self):
        from repro.pdn.decap import proc_config

        cap = platform.package_capacitor(proc_config("Proc0"))
        assert cap.capacitance == pytest.approx(
            platform.PARASITIC_PLANE_CAPACITANCE
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            platform.PlatformParameters(die_capacitance=-1.0)

    def test_clock_constants_consistent(self):
        assert platform.CLOCK_PERIOD_S == pytest.approx(
            1.0 / platform.CLOCK_FREQUENCY_HZ
        )


class TestCalibration:
    """The observables the paper reports for the physical machine."""

    def test_stock_impedance_peaks_in_first_droop_band(self):
        prof = ImpedanceProfile.from_network(platform.build_network("Proc100"))
        peak = prof.peak()
        assert 1.0e8 <= peak.frequency_hz <= 2.0e8, "Fig. 4a: 100-200 MHz"

    def test_reset_droops_grow_with_decap_removal(self):
        """Fig. 5(m-r)/Fig. 6: swings grow monotonically, knee at Proc25/3."""
        droops = {}
        for cfg in ordered_configs():
            trace = platform.reset_response(cfg, n_samples=300_000)
            droops[cfg.name] = trace.max_droop_fraction()
        values = [droops[c.name] for c in ordered_configs()]
        assert all(a <= b * 1.02 for a, b in zip(values, values[1:]))
        # Relative growth roughly matches the paper's 150 mV -> 350 mV span.
        rel = droops["Proc0"] / droops["Proc100"]
        assert 2.0 <= rel <= 5.0
        # The knee: Proc3's jump over Proc25 is larger than Proc25 over Proc50.
        assert (droops["Proc3"] - droops["Proc25"]) > (
            droops["Proc25"] - droops["Proc50"]
        )

    def test_proc0_reset_droop_violates_worst_case_margin(self):
        """Proc0's 350 mV-class droop is why it cannot boot."""
        trace = platform.reset_response("Proc0", n_samples=300_000)
        assert trace.max_droop_fraction() > platform.WORST_CASE_MARGIN

    def test_stock_reset_droop_within_margin(self):
        trace = platform.reset_response("Proc100", n_samples=300_000)
        assert trace.max_droop_fraction() < platform.WORST_CASE_MARGIN

    def test_virus_level_activity_approaches_worst_case_margin(self):
        """A resonant power virus must come close to (but not exceed by
        much) the 14 % worst-case margin on the stock machine."""
        from repro.pdn.stimulus import square_wave_current

        sim = platform.build_simulator("Proc100", with_ripple=False)
        prof = ImpedanceProfile.from_network(sim.network)
        period = max(2, int(round(
            platform.CLOCK_FREQUENCY_HZ / prof.resonance_frequency_hz()
        )))
        virus = square_wave_current(
            100_000, 8.0, 44.0, period_samples=period
        )
        droop = sim.simulate(virus, include_ripple=False).max_droop_fraction()
        assert 0.08 <= droop <= platform.WORST_CASE_MARGIN + 0.01
