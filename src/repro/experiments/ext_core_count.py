"""Extension — voltage noise versus active core count.

Sec. III-C: "As the number of cores per processor increases, this problem
can worsen."  The paper measures a two-core part; the simulator lets us
scale the same shared-rail chip to four cores on the *same* decap budget
and quantify the claim two ways:

* **worst case** — every active core runs the EXCP microbenchmark (the
  Fig. 13 worst pair, generalized): aligned deep stalls scale nearly
  linearly with core count, which is what worst-case margins must cover;
* **typical mix** — each core runs a different SPEC program: statistical
  averaging and cross-core slack pickup moderate the growth, so the
  typical/worst gap *widens* with core count — the resilient-design
  argument gets stronger, not weaker, with more cores.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.uarch.chip import Chip
from repro.uarch.events import StallEvent
from repro.workloads.microbenchmarks import IdleLoop, microbenchmark_for
from repro.workloads.spec import spec_benchmark

#: Rotation of programs assigned to cores in the typical-mix series.
PROGRAMS = ("mcf", "lbm", "sphinx", "libquantum")

MAX_CORES = 4


def run(quick: bool = False, config: str = "Proc100") -> ExperimentResult:
    n_cycles = 25_000 if quick else 40_000
    repeats = 2 if quick else 4
    chip = Chip(config, n_cores=MAX_CORES, with_ripple=True)
    idle = IdleLoop()
    excp = microbenchmark_for(StallEvent.EXCEPTION)

    result = ExperimentResult(
        experiment_id="Ext. D",
        title=f"Chip-wide noise vs number of active cores ({config})",
        columns=("active cores", "worst-case pk-pk (%)",
                 "typical-mix pk-pk (%)", "worst/typical"),
    )
    worst: List[float] = []
    typical: List[float] = []
    for active in range(1, MAX_CORES + 1):
        worst_vals, typical_vals = [], []
        for rep in range(repeats):
            kernel_windows = [
                excp.sample_window(n_cycles, rng=10 * rep + i)
                for i in range(active)
            ] + [
                idle.sample_window(n_cycles, rng=100 + 10 * rep + i)
                for i in range(MAX_CORES - active)
            ]
            worst_vals.append(
                chip.run(kernel_windows, seed=rep)
                .voltage.peak_to_peak_fraction()
            )
            mix_windows = [
                spec_benchmark(PROGRAMS[i % len(PROGRAMS)]).sample_window(
                    n_cycles, rng=200 * rep + i
                )
                for i in range(active)
            ] + [
                idle.sample_window(n_cycles, rng=300 + 10 * rep + i)
                for i in range(MAX_CORES - active)
            ]
            typical_vals.append(
                chip.run(mix_windows, seed=rep)
                .voltage.peak_to_peak_fraction()
            )
        worst.append(float(np.mean(worst_vals)))
        typical.append(float(np.mean(typical_vals)))
        result.add_row(
            active,
            100 * worst[-1],
            100 * typical[-1],
            worst[-1] / typical[-1],
        )
    result.series["worst_by_cores"] = np.array(worst)
    result.series["typical_by_cores"] = np.array(typical)
    result.notes.append(
        f"worst-case swing grows {worst[-1] / worst[0]:.2f}x from 1 to "
        f"{MAX_CORES} aligned cores while the typical mix grows only "
        f"{typical[-1] / typical[0]:.2f}x — worst-case margins scale badly "
        "with core count; typical-case design scales gracefully"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
