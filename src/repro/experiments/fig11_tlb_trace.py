"""Fig. 11 — TLB-miss microbenchmark voltage snapshot.

Paper: the scope capture shows the VRM's sawtooth switching ripple as
background, with recurring voltage spikes (overshoots) embedded in it —
one per TLB miss, because each miss stalls execution and the current drop
pushes the voltage above nominal.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.measurement.droops import detect_overshoots
from repro.uarch.chip import Chip
from repro.uarch.events import StallEvent
from repro.workloads.microbenchmarks import IdleLoop, microbenchmark_for


def run(quick: bool = False) -> ExperimentResult:
    n_cycles = 30_000 if quick else 80_000
    chip = Chip("Proc100", with_ripple=True)
    tlb = microbenchmark_for(StallEvent.TLB_MISS)
    idle = IdleLoop()

    busy = chip.run(
        [tlb.sample_window(n_cycles, rng=1), idle.sample_window(n_cycles, rng=2)],
        seed=3,
    )
    quiet = chip.run(
        [idle.sample_window(n_cycles, rng=4), idle.sample_window(n_cycles, rng=5)],
        seed=3,
    )

    # Spikes are judged against the run's own baseline level (the scope
    # screenshot shows them poking out of the sawtooth), so re-center each
    # trace at its median before excursion detection.
    def recentered(trace):
        from repro.pdn.simulate import VoltageTrace

        offset = np.median(trace.samples) - trace.nominal_voltage
        return VoltageTrace(
            trace.samples - offset, trace.dt_seconds, trace.nominal_voltage
        )

    overshoots_busy = detect_overshoots(recentered(busy.voltage))
    overshoots_idle = detect_overshoots(recentered(quiet.voltage))
    expected_misses = n_cycles / tlb.period_cycles

    # The VRM ripple period in cycles (the sawtooth backdrop).
    from repro.pdn.platform import CLOCK_FREQUENCY_HZ, DEFAULT_PARAMETERS

    ripple_period = CLOCK_FREQUENCY_HZ / DEFAULT_PARAMETERS.vrm.switching_frequency_hz

    result = ExperimentResult(
        experiment_id="Fig. 11",
        title="TLB misses embed overshoot spikes in the VRM ripple",
        columns=("quantity", "value"),
    )
    result.add_row("window (cycles)", n_cycles)
    result.add_row("TLB misses in window", expected_misses)
    result.add_row("overshoot spikes (TLB run)", overshoots_busy.count)
    result.add_row("overshoot spikes (idle run)", overshoots_idle.count)
    result.add_row("VRM ripple period (cycles)", ripple_period)
    result.add_row("pk-pk, TLB run (%)", 100 * busy.voltage.peak_to_peak_fraction())
    result.add_row("pk-pk, idle (%)", 100 * quiet.voltage.peak_to_peak_fraction())
    result.series["trace"] = busy.voltage
    result.series["idle_trace"] = quiet.voltage
    result.series["overshoots"] = overshoots_busy
    result.notes.append(
        "paper: recurring overshoot spikes riding the sawtooth VRM ripple; "
        "idle shows the ripple alone"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
