"""Split (per-core) power supplies vs the connected shared rail.

The paper studies the widespread shared-supply design, and notes (footnote
3) why: IBM's POWER6 team compared split- versus connected-core supplies
and found voltage swings *much larger* when cores operate independently,
and Kim et al. (HPCA'07) showed per-core on-chip regulators can likewise
worsen noise.  Splitting the rail halves the decoupling available to each
core and forfeits cross-core averaging — one core's steady draw no longer
absorbs part of the other's transient.

:class:`SplitSupplyChip` models that alternative: each core gets its own
PDN with half of every capacitor bank, and the chip-level result reports
per-rail voltage traces.  Comparing it against the shared-rail
:class:`~repro.uarch.chip.Chip` on identical windows reproduces the
POWER6 observation and justifies the paper's focus on global (chip-wide)
emergencies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.pdn import platform
from repro.pdn.simulate import TransientSimulator, VoltageTrace
from repro.random_utils import SeedLike, derive_generator
from repro.uarch.chip import DEFAULT_UNCORE_AMPS, IDLE_CORE_ACTIVITY
from repro.uarch.core import Core, CoreExecution, CoreParameters
from repro.uarch.window import ExecutionWindow


@dataclass(frozen=True)
class SplitSupplyRun:
    """The outcome of running windows on per-core rails."""

    rails: Tuple[VoltageTrace, ...]
    cores: Tuple[CoreExecution, ...]
    config_name: str

    @property
    def n_cycles(self) -> int:
        return len(self.rails[0])

    def worst_droop_fraction(self) -> float:
        """Deepest droop across all rails (an emergency on any rail is an
        emergency for the chip)."""
        return max(rail.max_droop_fraction() for rail in self.rails)

    def worst_peak_to_peak_fraction(self) -> float:
        return max(rail.peak_to_peak_fraction() for rail in self.rails)


#: Splitting the socket's power pins between two rails leaves each rail a
#: higher-inductance delivery path (roughly the pin count's inverse, with
#: some shared-plane relief).
SPLIT_INDUCTANCE_FACTOR = 1.8


def _per_rail_parameters(
    base: platform.PlatformParameters,
) -> platform.PlatformParameters:
    """Each rail owns half the capacitance and a leaner pin allocation."""
    return replace(
        base,
        bulk_capacitance=base.bulk_capacitance / 2.0,
        die_capacitance=base.die_capacitance / 2.0,
        bulk_inductance=base.bulk_inductance * SPLIT_INDUCTANCE_FACTOR,
        package_inductance=base.package_inductance * SPLIT_INDUCTANCE_FACTOR,
    )


class SplitSupplyChip:
    """A processor whose cores sit on independent power rails.

    Parameters mirror :class:`~repro.uarch.chip.Chip`; the package decap
    inventory is split evenly between the rails, and the uncore draw is
    shared equally.
    """

    def __init__(
        self,
        config: str = "Proc100",
        n_cores: int = 2,
        core_parameters: Optional[CoreParameters] = None,
        platform_parameters: platform.PlatformParameters = platform.DEFAULT_PARAMETERS,
        uncore_amps: float = DEFAULT_UNCORE_AMPS,
        with_ripple: bool = True,
    ) -> None:
        if n_cores < 1:
            raise ConfigurationError("n_cores must be >= 1")
        if uncore_amps < 0:
            raise ConfigurationError("uncore_amps must be non-negative")
        self._config_name = config
        rail_parameters = _per_rail_parameters(platform_parameters)
        network = platform.build_network(config, rail_parameters)
        # Each rail keeps 1/n of the land-side package capacitors.
        network = network.with_decap_fraction(1.0 / n_cores, "package")
        vrm = rail_parameters.vrm if with_ripple else None
        self._simulators = tuple(
            TransientSimulator(network, platform.CLOCK_PERIOD_S, vrm=vrm)
            for _ in range(n_cores)
        )
        self._cores = tuple(
            Core(core_parameters, core_id=i) for i in range(n_cores)
        )
        self._uncore_share = float(uncore_amps) / n_cores

    @property
    def n_cores(self) -> int:
        return len(self._cores)

    @property
    def config_name(self) -> str:
        return self._config_name

    def run(
        self,
        windows: Sequence[Optional[ExecutionWindow]],
        seed: SeedLike = None,
    ) -> SplitSupplyRun:
        """Run one window per core, each on its own rail."""
        if len(windows) > self.n_cores:
            raise SimulationError(
                f"{len(windows)} windows for {self.n_cores} cores"
            )
        concrete = [w for w in windows if w is not None]
        if not concrete:
            raise SimulationError("at least one core must run a workload")
        n_cycles = concrete[0].n_cycles
        if any(w.n_cycles != n_cycles for w in concrete):
            raise SimulationError("all windows must have the same length")

        padded = [
            windows[i] if i < len(windows) and windows[i] is not None
            else ExecutionWindow(
                baseline_activity=np.full(n_cycles, IDLE_CORE_ACTIVITY),
                events=[],
                base_ipc=0.3,
                label="(idle)",
            )
            for i in range(self.n_cores)
        ]
        activities = np.stack([
            core.realize_activity(window)
            for core, window in zip(self._cores, padded)
        ])
        executions = self._cores[0].finalize_batch(padded, activities)
        rail_currents = np.stack([
            execution.current_amps for execution in executions
        ]) + self._uncore_share
        # Every rail shares one discretized network, so all rails go
        # through a single batched sosfilt call (bit-identical per rail
        # to the per-simulator path this replaced).
        rails = self._simulators[0].simulate_batch(
            rail_currents,
            seeds=[
                derive_generator(seed, "rail", i, self._config_name)
                for i in range(self.n_cores)
            ],
        )
        return SplitSupplyRun(
            rails=tuple(rails),
            cores=tuple(executions),
            config_name=self._config_name,
        )
