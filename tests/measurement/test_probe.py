"""Unit tests for the probe/scope front-end."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.measurement.probe import DifferentialProbe, Oscilloscope
from repro.pdn.simulate import VoltageTrace


def flat_trace(n=10_000, value=1.3):
    return VoltageTrace(np.full(n, value), 1e-9, 1.3)


class TestDifferentialProbe:
    def test_noise_added(self):
        probe = DifferentialProbe(noise_volts_rms=1 * units.MILLI_VOLT, bandwidth_hz=None)
        sensed = probe.sense(flat_trace(), seed=0)
        assert sensed.samples.std() == pytest.approx(1e-3, rel=0.1)

    def test_noiseless_passthrough(self):
        probe = DifferentialProbe(noise_volts_rms=0.0, bandwidth_hz=None)
        trace = flat_trace()
        sensed = probe.sense(trace)
        assert np.array_equal(sensed.samples, trace.samples)

    def test_band_limiting_attenuates_fast_content(self):
        rng = np.random.default_rng(0)
        samples = 1.3 + rng.normal(0, 0.01, 20_000)
        trace = VoltageTrace(samples, 1e-9, 1.3)
        probe = DifferentialProbe(noise_volts_rms=0.0, bandwidth_hz=50 * units.MEGA_HERTZ)
        sensed = probe.sense(trace)
        assert sensed.samples.std() < trace.samples.std()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DifferentialProbe(noise_volts_rms=-1)
        with pytest.raises(ConfigurationError):
            DifferentialProbe(bandwidth_hz=0)


class TestOscilloscope:
    def test_interval_splitting(self):
        scope = Oscilloscope(
            probe=DifferentialProbe(noise_volts_rms=0, bandwidth_hz=None),
            interval_cycles=5_000,
        )
        scope.capture(flat_trace(12_000))
        assert len(scope.intervals) == 3
        assert scope.intervals[0].total == 5_000
        assert scope.intervals[-1].total == 2_000

    def test_combined_histogram(self):
        scope = Oscilloscope(interval_cycles=4_000)
        scope.capture(flat_trace(10_000), seed=1)
        combined = scope.combined_histogram()
        assert combined.total == 10_000

    def test_empty_combined_rejected(self):
        with pytest.raises(ConfigurationError):
            Oscilloscope().combined_histogram()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Oscilloscope(interval_cycles=0)
