"""Ablation: global vs per-core rollback on a voltage emergency.

Design choice under test: the paper assumes a *global* recovery — both
cores roll back on any emergency, because the supply is shared ("such
recovery comes at the hefty price of system-wide performance
degradation").  Modeling a hypothetical per-core recovery (only the
affected core loses its pipeline, charging half the cycle cost chip-wide)
quantifies how much of the problem is the global blast radius.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.resilience import ResilientDesignModel, performance_improvement
from repro.experiments.context import (
    QUICK_PARSEC_SUBSET,
    QUICK_SPEC_SUBSET,
    get_campaign,
)

#: Per-core recovery halves the chip-wide cost of each emergency: one of
#: the two cores keeps retiring instructions through the rollback.
PER_CORE_FACTOR = 0.5

COSTS = (1_000, 10_000, 100_000)


def test_ablation_recovery_scope(benchmark, quick):
    def experiment():
        campaign = get_campaign("Proc3", n_cycles=25_000)
        runs = campaign.all_runs(QUICK_SPEC_SUBSET, QUICK_PARSEC_SUBSET)
        model = ResilientDesignModel([r.tail_model() for r in runs])
        rows = []
        for cost in COSTS:
            optimum_global = model.optimal_margin(cost)
            optimum_percore = model.optimal_margin(cost * PER_CORE_FACTOR)
            rows.append(
                (cost, optimum_global.improvement, optimum_percore.improvement,
                 optimum_global.margin, optimum_percore.margin)
            )
        return rows

    rows = run_once(benchmark, experiment)
    for cost, imp_global, imp_percore, m_global, m_percore in rows:
        # Containing the rollback to one core always helps...
        assert imp_percore >= imp_global - 1e-9
        # ...and allows the same or a more aggressive margin.
        assert m_percore <= m_global + 1e-9
    # The benefit grows with recovery cost (the paper's motivation for
    # mitigating *global* recoveries in software).
    gaps = [r[2] - r[1] for r in rows]
    assert gaps[-1] >= gaps[0] - 1e-9
    assert max(gaps) > 0.005
