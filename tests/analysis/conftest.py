"""Shared helpers for the simlint test suite."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
FLOW_FIXTURES = FIXTURES / "flow"
CORPUS = Path(__file__).parent / "corpus"

#: ``# expect: CODE`` or ``# expect: CODE1, CODE2`` markers in fixtures.
_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)")


def expected_findings(fixture_path: Path) -> set[tuple[str, int]]:
    """Collect ``(code, line)`` pairs declared by ``# expect:`` markers."""
    expected: set[tuple[str, int]] = set()
    for lineno, text in enumerate(
        fixture_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT_RE.search(text)
        if match:
            for code in match.group(1).split(","):
                expected.add((code.strip(), lineno))
    return expected


@pytest.fixture()
def fixtures_dir() -> Path:
    return FIXTURES
