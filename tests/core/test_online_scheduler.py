"""Unit tests for the online (non-oracle) scheduler."""

import pytest

from repro.core.online_scheduler import Job, OnlineScheduler
from repro.errors import SchedulingError
from repro.uarch.chip import Chip

POOL = ("gamess", "mcf", "namd", "sphinx")


@pytest.fixture(scope="module")
def scheduler():
    chip = Chip("Proc3", with_ripple=True)
    return OnlineScheduler(chip, window_cycles=8_000)


class TestConstruction:
    def test_validation(self):
        chip = Chip("Proc3", with_ripple=False)
        with pytest.raises(SchedulingError):
            OnlineScheduler(chip, ema_alpha=0)
        with pytest.raises(SchedulingError):
            OnlineScheduler(chip, epsilon=1.0)
        with pytest.raises(SchedulingError):
            OnlineScheduler(chip, metric="wishes")


class TestRunPool:
    def test_all_jobs_complete(self, scheduler):
        result = scheduler.run_pool(
            POOL, copies=2, intervals_per_job=2, seed=1
        )
        # 4 programs x 2 copies x 2 intervals = 16 job-intervals,
        # two per scheduled interval.
        assert result.intervals == 8
        assert result.total_droops >= 0

    def test_records_carry_pairs(self, scheduler):
        result = scheduler.run_pool(
            POOL, copies=2, intervals_per_job=1, seed=2
        )
        for record in result.records:
            assert record.pair[0] in POOL
            assert record.pair[1] in POOL
            assert record.throughput_ipc > 0

    def test_deterministic(self, scheduler):
        a = scheduler.run_pool(POOL, copies=2, intervals_per_job=2, seed=5)
        b = scheduler.run_pool(POOL, copies=2, intervals_per_job=2, seed=5)
        assert [r.pair for r in a.records] == [r.pair for r in b.records]
        assert a.total_droops == b.total_droops

    def test_validation(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.run_pool(("mcf",), copies=1)
        with pytest.raises(SchedulingError):
            scheduler.run_pool(POOL, copies=0)


class TestRunService:
    def test_interval_count(self, scheduler):
        result = scheduler.run_service(POOL, n_intervals=10, seed=3)
        assert result.intervals == 10

    def test_fair_share_respected(self, scheduler):
        result = scheduler.run_service(
            POOL, n_intervals=20, fairness_slack=2, seed=4
        )
        service = {name: 0 for name in POOL}
        for record in result.records:
            for name in record.pair:
                service[name] += 1
        # With slack 2 and 40 job-slots over 4 programs, every program
        # gets close to its fair 10 slots.
        assert max(service.values()) - min(service.values()) <= 2 * 2 + 2

    def test_policy_names(self, scheduler):
        aware = scheduler.run_service(POOL, n_intervals=4, seed=5)
        random = scheduler.run_service(
            POOL, n_intervals=4, noise_aware=False, seed=5
        )
        assert aware.policy_name == "service-droop"
        assert random.policy_name == "service-random"

    def test_validation(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.run_service(("mcf",))
        with pytest.raises(SchedulingError):
            scheduler.run_service(POOL, n_intervals=0)
        with pytest.raises(SchedulingError):
            scheduler.run_service(POOL, fairness_slack=0)


class TestJob:
    def test_done_flag(self):
        job = Job("mcf", remaining_intervals=1)
        assert not job.done
        job.remaining_intervals = 0
        assert job.done
