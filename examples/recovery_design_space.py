#!/usr/bin/env python
"""Pick a recovery mechanism — and see what software buys you.

Walks the recovery-mechanism catalog (Razor → DeCoR → prediction →
production checkpointing) through the resilience model on the noisy Proc3
node, then shows how the two software assists shift the picture:

1. the closed-loop voltage-guided throttle cuts the emergency rate
   directly (fewer recoveries at any margin);
2. droop-aware co-scheduling lets a coarse, non-intrusive mechanism meet
   targets that otherwise need intrusive fine-grained hardware.

Run:  python examples/recovery_design_space.py
"""

import numpy as np

from repro import MeasurementCampaign, ResilientDesignModel
from repro.core.recovery import (
    MECHANISMS,
    evaluate_mechanisms,
    non_intrusive_mechanisms,
)
from repro.core.predictor import VoltageGuidedThrottle
from repro.measurement.droops import CHARACTERIZATION_MARGIN, detect_droops
from repro.pdn.platform import CLOCK_PERIOD_S, DEFAULT_PARAMETERS
from repro.pdn.simulate import VoltageTrace
from repro.uarch.chip import Chip
from repro.uarch.core import Core
from repro.workloads.microbenchmarks import IdleLoop
from repro.workloads.spec import spec_benchmark

SUBSET = ("gamess", "lbm", "libquantum", "mcf", "namd",
          "povray", "sphinx", "tonto")


def main() -> None:
    campaign = MeasurementCampaign("Proc3", n_cycles=30_000, seed=0)
    runs = campaign.all_runs(SUBSET, ("canneal", "streamcluster"))
    model = ResilientDesignModel([r.tail_model() for r in runs])

    print("== Recovery-mechanism catalog on Proc3 ==")
    results = evaluate_mechanisms(model)
    for mechanism in MECHANISMS:
        optimum = results[mechanism.name]
        tag = "intrusive" if mechanism.intrusive else "shipping "
        print(f"  [{tag}] {mechanism.name:34s} "
              f"cost {mechanism.cost_cycles:>7.0f} cy  "
              f"margin {optimum.margin:5.1%}  "
              f"improvement {optimum.improvement:+6.1%}")
    print()
    viable = [m for m in non_intrusive_mechanisms()
              if results[m.name].improvement > 0.05]
    print(f"non-intrusive mechanisms clearing +5%: "
          f"{[m.name for m in viable] or 'none'}")
    print()

    # --- software assist 1: the voltage-guided throttle ----------------
    print("== Closed-loop throttling on the noisiest benchmark ==")
    chip = Chip("Proc3", with_ripple=True, slack_coupling=0.0)
    core = Core()
    idle = IdleLoop()
    n = 30_000
    activity = core.realize_activity(
        spec_benchmark("mcf").sample_window(n, rng=1)
    )
    other = core.current_from_activity(
        core.realize_activity(idle.sample_window(n, rng=2))
    ) + 2.0
    ripple = DEFAULT_PARAMETERS.vrm.ripple(
        n, CLOCK_PERIOD_S, chip.nominal_voltage, seed=3
    )
    raw = VoltageGuidedThrottle(
        chip, arm_margin=0.5, slew_per_cycle=1.0, hold_cycles=1
    ).run(activity, other, ripple=ripple)
    guided = VoltageGuidedThrottle(chip).run(activity, other, ripple=ripple)

    def rate(voltage):
        trace = VoltageTrace(voltage, CLOCK_PERIOD_S, chip.nominal_voltage)
        return detect_droops(trace).event_rate(CHARACTERIZATION_MARGIN)

    print(f"  emergency rate: {rate(raw.voltage):.2e} -> "
          f"{rate(guided.voltage):.2e} per cycle")
    print(f"  throughput cost: "
          f"{guided.throughput_loss_fraction(activity):.1%}, "
          f"throttle duty {guided.engaged_fraction:.1%}")
    print()

    # --- software assist 2: what scheduling buys the coarse schemes ----
    print("== Coarse recovery + droop-aware scheduling ==")
    from repro.core import BatchScheduler, DroopPolicy, PairOracle

    oracle = PairOracle(campaign)
    scheduler = BatchScheduler(oracle, programs=SUBSET)
    baseline = scheduler.evaluate(scheduler.specrate_schedule(), "SPECrate")
    droop_eval = scheduler.run_policy(DroopPolicy(), n_pairs=16, seed=5)
    droops_rel, perf_rel = droop_eval.normalized_to(baseline)
    coarse = MECHANISMS[-1]
    print(f"  Droop scheduling: {droops_rel:.2f}x emergencies at "
          f"{perf_rel:.2f}x throughput vs SPECrate")
    print(f"  -> with '{coarse.name}' ({coarse.cost_cycles:.0f} cy), "
          f"recovery overhead scales by the same {droops_rel:.2f}x factor")
    print()
    print("Software assists make the cheap shipping mechanisms usable —")
    print("the paper's thesis, end to end.")


if __name__ == "__main__":
    main()
