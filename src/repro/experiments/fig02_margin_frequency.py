"""Fig. 2 — peak clock frequency versus operating voltage margin per node.

Paper: a 20 % margin at 45 nm costs ~25 % of peak frequency; the same
relative margin costs progressively more at lower-Vdd nodes (>50 % loss
for the doubled swings expected by 16 nm).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.scaling.ring_oscillator import frequency_vs_margin

MARGIN_GRID = np.linspace(0.0, 0.5, 26)


def run(quick: bool = False) -> ExperimentResult:
    curves = frequency_vs_margin(MARGIN_GRID)
    result = ExperimentResult(
        experiment_id="Fig. 2",
        title="Peak frequency (%) vs operating margin per technology node",
        columns=("margin (%)",) + tuple(curves),
    )
    for i, margin in enumerate(MARGIN_GRID):
        result.add_row(
            100 * float(margin),
            *(float(curves[name][i]) for name in curves),
        )
    result.series["margins"] = MARGIN_GRID
    result.series["curves"] = curves
    loss_45 = 100.0 - float(np.interp(0.2, MARGIN_GRID, curves["45nm"]))
    result.notes.append(
        f"paper: 20% margin at 45 nm costs ~25% frequency; measured {loss_45:.1f}%"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
