"""Benchmark-harness configuration.

Each benchmark regenerates one paper figure/table through its experiment
harness and asserts the paper's qualitative shape (who wins, by roughly
what factor, where crossovers fall).  Absolute paper numbers are *not*
asserted — the substrate is a simulator, not the authors' instrumented
Core 2 Duo.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_FULL_BENCH=1`` to use the full 881-run protocol sizes instead
of the quick subsets.
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    """Whether benchmarks run the reduced protocol (default: yes)."""
    return os.environ.get("REPRO_FULL_BENCH", "") != "1"


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
