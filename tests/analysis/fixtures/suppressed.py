"""Fixture: violations silenced by inline suppression comments.

Never imported — parsed by simlint only.  Every violation below carries
a ``# simlint: disable=CODE`` comment, so simlint must report nothing.
tests/analysis/test_suppressions.py also re-lints this file with the
suppression comments stripped and expects the findings to reappear.
"""

from __future__ import annotations

import time


def elapsed_telemetry() -> float:
    return time.time()  # simlint: disable=DET003


def float_gate(voltage: float) -> bool:
    return voltage == 0.0  # simlint: disable=HYG001


def blanket(volts_rms: float = 0.4e-3) -> float:  # simlint: disable
    return volts_rms
