"""Voltage-emergency prediction and current-ramp throttling.

The paper's recovery-cost axis includes a 100-cycle scheme built on
*emergency prediction* (Reddi et al., HPCA'09: signatures of program and
microarchitectural activity predict impending emergencies), and its
related work covers *a-priori current ramping* (Powell et al.): both
exploit the fact that the dangerous dI/dt — the refill surge after a deep
stall — is visible a few cycles before the droop it causes.

Two actuation styles are implemented on the simulated activity stream:

* :class:`EmergencyPredictor` — **open-loop ramping**: watches per-cycle
  activity causally, arms after a deep fast drop (the droop precursor),
  and slew-limits the refill ramp.  Blind to the supply state, it must
  smooth *every* edge, which is expensive when the workload's burst
  cadence sits at the package resonance.
* :class:`VoltageGuidedThrottle` — **closed-loop guided throttling**:
  co-simulates the PDN cycle by cycle and sheds issue rate only while the
  sensed voltage is inside an arming band above the operating margin —
  the selective behaviour real prediction schemes need.

Deferred work is counted in both cases, giving the throughput cost; the
``ext_throttle`` experiment quantifies the trade (droop events avoided
versus IPC lost) and shows the closed-loop variant dominating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThrottleParameters:
    """Tuning of the predictor + ramp limiter.

    Parameters
    ----------
    arm_drop:
        Activity drop (absolute, within ``drop_window`` cycles) that arms
        the predictor — deep fast drops precede dangerous refills.
    drop_window:
        How many cycles back the drop detector compares against.
    slew_per_cycle:
        Maximum allowed activity increase per cycle while armed.
    hold_cycles:
        How long the limiter stays armed after the precursor.
    """

    arm_drop: float = 0.25
    drop_window: int = 8
    slew_per_cycle: float = 0.02
    hold_cycles: int = 64

    def __post_init__(self) -> None:
        if not 0 < self.arm_drop <= 1:
            raise ConfigurationError("arm_drop must be in (0, 1]")
        if self.drop_window < 1:
            raise ConfigurationError("drop_window must be >= 1")
        if self.slew_per_cycle <= 0:
            raise ConfigurationError("slew_per_cycle must be positive")
        if self.hold_cycles < 1:
            raise ConfigurationError("hold_cycles must be >= 1")


@dataclass(frozen=True)
class ThrottleOutcome:
    """Result of throttling one activity stream."""

    activity: np.ndarray
    engaged: np.ndarray
    deferred_work: float

    @property
    def engaged_fraction(self) -> float:
        return float(self.engaged.mean())

    def throughput_loss_fraction(self, original: np.ndarray) -> float:
        """Issue slots lost relative to the unthrottled stream."""
        total = float(np.minimum(original, 1.0).sum())
        if total <= 0:
            return 0.0
        throttled = float(np.minimum(self.activity, 1.0).sum())
        return max(0.0, (total - throttled) / total)


@dataclass(frozen=True)
class GuidedThrottleOutcome:
    """Result of a closed-loop (voltage-guided) throttling run."""

    activity: np.ndarray
    voltage: np.ndarray
    engaged: np.ndarray
    deferred_work: float

    @property
    def engaged_fraction(self) -> float:
        return float(self.engaged.mean())

    def throughput_loss_fraction(self, original: np.ndarray) -> float:
        total = float(np.minimum(original, 1.0).sum())
        if total <= 0:
            return 0.0
        throttled = float(np.minimum(self.activity, 1.0).sum())
        return max(0.0, (total - throttled) / total)


class VoltageGuidedThrottle:
    """Closed-loop emergency prevention: throttle only when voltage is low.

    Open-loop activity smoothing must slow *every* refill edge, which is
    ruinously expensive when the workload's natural burst cadence sits at
    the package resonance.  The closed-loop variant co-simulates the PDN
    cycle by cycle and engages the issue throttle only while the sensed
    voltage is inside an arming band just above the operating margin — the
    selective version of the paper's cited prediction schemes (a voltage
    near the margin with current still rising *is* the signature of an
    imminent emergency).

    Parameters
    ----------
    chip:
        The chip whose PDN and core calibration are co-simulated (core 0
        is the throttled core).
    arm_margin:
        Deviation (fraction of nominal, positive) at which the throttle
        arms; must be shallower than the operating margin being protected.
    relief_depth:
        Fraction of the issue rate shed while armed — the actuation must
        actively *reduce* current, because by the time the voltage is low
        the dangerous ramp (the slow gating component) is already under
        way and merely capping further rises cannot stop it.
    slew_per_cycle:
        Maximum activity increase per cycle while recovering from a
        throttled level (prevents the throttle's own release edge from
        ringing the supply).
    hold_cycles:
        Minimum cycles the throttle stays armed once triggered.
    """

    def __init__(
        self,
        chip,
        arm_margin: float = 0.019,
        relief_depth: float = 0.30,
        slew_per_cycle: float = 0.004,
        hold_cycles: int = 30,
    ) -> None:
        if arm_margin <= 0:
            raise ConfigurationError("arm_margin must be positive")
        if not 0 < relief_depth < 1:
            raise ConfigurationError("relief_depth must be in (0, 1)")
        if slew_per_cycle <= 0:
            raise ConfigurationError("slew_per_cycle must be positive")
        if hold_cycles < 1:
            raise ConfigurationError("hold_cycles must be >= 1")
        self._chip = chip
        self._arm_margin = float(arm_margin)
        self._relief = float(relief_depth)
        self._slew = float(slew_per_cycle)
        self._hold = int(hold_cycles)

    def run(
        self,
        activity: np.ndarray,
        other_current: np.ndarray,
        ripple: np.ndarray | None = None,
    ) -> GuidedThrottleOutcome:
        """Co-simulate one core's activity against the PDN with feedback.

        ``other_current`` carries everything else on the rail (sibling
        core + uncore); ``ripple`` optionally adds the VRM sawtooth so the
        trigger sees realistic waveforms.
        """
        from repro.uarch.core import Core

        activity = np.asarray(activity, dtype=float)
        other_current = np.asarray(other_current, dtype=float)
        if activity.shape != other_current.shape or activity.ndim != 1:
            raise ConfigurationError(
                "activity and other_current must be equal-length 1-D arrays"
            )
        n = activity.size
        if ripple is None:
            ripple = np.zeros(n)

        simulator = self._chip.simulator
        sos, zi_unit = simulator.discrete_sections()
        nominal = simulator.network.nominal_voltage
        core = Core()
        params = core.parameters
        alpha = 1.0 - np.exp(-1.0 / params.gating_tau_cycles)
        w_fast = params.fast_fraction

        out = activity.copy()
        engaged = np.zeros(n, dtype=bool)
        voltage = np.empty(n)
        deferred = 0.0

        slow_state = activity[0]
        current0 = params.leakage_amps + params.dynamic_max_amps * activity[0]
        total0 = current0 + other_current[0]
        state = zi_unit * total0
        armed_until = -1
        arm_level = -self._arm_margin * nominal

        for t in range(n):
            if t > 0:
                armed = t <= armed_until
                recovering = out[t - 1] < activity[t - 1] - 1e-12
                target = (
                    activity[t] * (1.0 - self._relief) if armed else activity[t]
                )
                if (armed or recovering) and target > out[t - 1] + self._slew:
                    # Both the throttle and its release ramp gently; a
                    # sharp release edge would ring the supply itself.
                    target = out[t - 1] + self._slew
                if target < activity[t]:
                    engaged[t] = armed
                    deferred += activity[t] - target
                out[t] = target
            # Core current from (possibly throttled) activity.
            slow_state = (1 - alpha) * slow_state + alpha * out[t]
            effective = w_fast * out[t] + (1 - w_fast) * slow_state
            current = params.leakage_amps + params.dynamic_max_amps * effective
            x = current + other_current[t]
            # One step of the SOS filter (direct form II transposed).
            for s in range(sos.shape[0]):
                b0, b1, b2, _, a1, a2 = sos[s]
                y = b0 * x + state[s, 0]
                state[s, 0] = b1 * x - a1 * y + state[s, 1]
                state[s, 1] = b2 * x - a2 * y
                x = y
            v = nominal + x + ripple[t]
            voltage[t] = v
            if v - nominal < arm_level:
                armed_until = t + self._hold
        return GuidedThrottleOutcome(
            activity=out,
            voltage=voltage,
            engaged=engaged,
            deferred_work=deferred,
        )


class EmergencyPredictor:
    """Causal droop-precursor detector with a ramp-limiting actuator."""

    def __init__(self, parameters: ThrottleParameters | None = None) -> None:
        self._params = parameters or ThrottleParameters()

    @property
    def parameters(self) -> ThrottleParameters:
        return self._params

    def throttle(self, activity: np.ndarray) -> ThrottleOutcome:
        """Apply prediction + ramp limiting to a per-cycle activity stream.

        The pass is strictly causal: the decision at cycle ``t`` uses only
        cycles ``<= t``.  While armed, activity may not rise faster than
        the slew cap; clipped issue slots are *dropped* (counted as
        deferred work / throughput loss), never re-issued later — a
        re-issue backlog would recreate the very current peaks the
        throttle exists to remove.
        """
        activity = np.asarray(activity, dtype=float)
        if activity.ndim != 1 or activity.size == 0:
            raise ConfigurationError("activity must be a non-empty 1-D array")
        p = self._params
        out = activity.copy()
        engaged = np.zeros(activity.size, dtype=bool)
        armed_until = -1  # deadline for the refill to *begin*
        ramping = False
        ramp_target = np.inf
        deferred_total = 0.0
        for t in range(1, activity.size):
            lookback = max(0, t - p.drop_window)
            if activity[lookback] - activity[t] >= p.arm_drop:
                # A deep drop: the next refill edge is the dangerous one.
                # Remember the pre-drop level; while already armed keep the
                # highest target seen (the lookback window slides into the
                # stall itself as it lengthens).
                if (t <= armed_until or ramping) and np.isfinite(ramp_target):
                    ramp_target = max(ramp_target, activity[lookback])
                else:
                    ramp_target = activity[lookback]
                armed_until = t + p.hold_cycles
            active = ramping or t <= armed_until
            if active and out[t - 1] < ramp_target:
                cap = out[t - 1] + p.slew_per_cycle
                if activity[t] > cap:
                    # The refill began: once clipping, stay engaged until
                    # the ramp completes, however long the stall lasted.
                    ramping = True
                    engaged[t] = True
                    deferred_total += activity[t] - cap
                    out[t] = cap
            if out[t - 1] >= ramp_target:
                ramping = False
                armed_until = -1
                ramp_target = np.inf
        return ThrottleOutcome(
            activity=np.clip(out, 0.0, None),
            engaged=engaged,
            deferred_work=deferred_total,
        )
