"""The lumped power-delivery-network ladder and its state-space form.

The model follows the canonical three-stage PDN used throughout the
voltage-noise literature (e.g. Gupta et al., DATE'07; Aygun et al., Intel
Technology Journal):

.. code-block:: text

   VRM --- R0,L0 ---+--- R1,L1 ---+--- R2,L2 ---+   (die node)
   (ideal            |             |             |
    source)        C_bulk       C_package     C_die   <- I_load(t)

Each stage is a series resistor/inductor followed by a shunt capacitor
(with ESR).  The load — the processor's time-varying current draw — is
pulled from the final (die) node.  Three LC sections give the three
impedance regimes seen on real platforms: a kHz-range bulk pole, the
package (mid-frequency) resonance around 1 MHz, and the first-droop die
resonance in the 100–200 MHz band that Fig. 4 of the paper validates
against Intel data.

Two views of the same network are provided:

* :meth:`PowerDeliveryNetwork.impedance` — analytic driving-point
  impedance at the die, used for impedance profiles (Fig. 4).
* :meth:`PowerDeliveryNetwork.state_space` — continuous-time state-space
  matrices consumed by :class:`repro.pdn.simulate.TransientSimulator` for
  time-domain voltage traces.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.pdn.elements import Capacitor, Inductor, parallel, series


@dataclass(frozen=True)
class PDNStage:
    """One RL-series / C-shunt section of the ladder.

    Parameters
    ----------
    name:
        Human-readable label (``"bulk"``, ``"package"``, ``"die"``).
    interconnect:
        Series inductor (with ESR) connecting this stage to the previous
        node.
    decap:
        Shunt decoupling capacitor (with ESR) at this stage's output node.
    """

    name: str
    interconnect: Inductor
    decap: Capacitor

    def with_decap_fraction(self, fraction: float) -> "PDNStage":
        """Return a copy with only ``fraction`` of the decap remaining."""
        return replace(self, decap=self.decap.scaled(fraction))


class PowerDeliveryNetwork:
    """A multi-stage RLC power-delivery ladder feeding a die load.

    Parameters
    ----------
    stages:
        Ladder sections ordered from the voltage regulator towards the die.
        The last stage's node is the die node where load current is drawn
        and where the on-die voltage (``VCCsense``) is observed.
    nominal_voltage:
        The regulator set-point in volts (Core 2 Duo E6300: ~1.30 V).
    """

    def __init__(self, stages: Sequence[PDNStage], nominal_voltage: float) -> None:
        if len(stages) < 1:
            raise ConfigurationError("a PDN needs at least one stage")
        if nominal_voltage <= 0:
            raise ConfigurationError(
                f"nominal_voltage must be positive, got {nominal_voltage!r}"
            )
        self._stages = tuple(stages)
        self._nominal_voltage = float(nominal_voltage)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def stages(self) -> Tuple[PDNStage, ...]:
        return self._stages

    @property
    def nominal_voltage(self) -> float:
        return self._nominal_voltage

    @property
    def n_states(self) -> int:
        """Two states (inductor current, capacitor voltage) per stage."""
        return 2 * len(self._stages)

    @property
    def dc_resistance(self) -> float:
        """Total series resistance from regulator to die (ohms)."""
        return sum(stage.interconnect.esr for stage in self._stages)

    def with_decap_fraction(self, fraction: float, stage_name: str = "package") -> "PowerDeliveryNetwork":
        """Return a network with ``fraction`` of one stage's decap remaining.

        This is the software analogue of breaking capacitors off the package
        land side (Fig. 5): only the named stage is touched, everything else
        is shared with the original network.
        """
        names = [stage.name for stage in self._stages]
        if stage_name not in names:
            raise ConfigurationError(
                f"unknown stage {stage_name!r}; have {names}"
            )
        new_stages = [
            stage.with_decap_fraction(fraction) if stage.name == stage_name else stage
            for stage in self._stages
        ]
        return PowerDeliveryNetwork(new_stages, self._nominal_voltage)

    # ------------------------------------------------------------------
    # Frequency domain
    # ------------------------------------------------------------------
    def impedance(self, frequency_hz: np.ndarray | float) -> np.ndarray:
        """Driving-point impedance seen from the die node, in ohms.

        The regulator is treated as an ideal AC short, so the impedance is
        the recursive parallel/series combination of the ladder, evaluated
        back-to-front.  ``frequency_hz`` must be strictly positive.
        """
        omega = 2.0 * np.pi * np.asarray(frequency_hz, dtype=float)
        if np.any(omega <= 0):
            raise ConfigurationError("impedance requires frequency > 0")
        upstream = self._stages[0].interconnect.impedance(omega)
        z = parallel(self._stages[0].decap.impedance(omega), upstream)
        for stage in self._stages[1:]:
            z = parallel(
                stage.decap.impedance(omega),
                series(stage.interconnect.impedance(omega), z),
            )
        return z

    # ------------------------------------------------------------------
    # Time domain (state space)
    # ------------------------------------------------------------------
    def state_space(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Continuous state-space ``(A, B, C, D)`` of the ladder.

        States are ``[iL_1 .. iL_N, vC_1 .. vC_N]``; inputs are
        ``u = [V_source, I_load]``; the single output is the die-node
        voltage.  Node voltages include the capacitor ESR drop, which is
        what couples the load current directly into the output (the ``D``
        term) and gives realistic first-droop sharpness.
        """
        n = len(self._stages)
        a = np.zeros((2 * n, 2 * n))
        b = np.zeros((2 * n, 2))
        c = np.zeros((1, 2 * n))
        d = np.zeros((1, 2))

        inductances = np.array([s.interconnect.inductance for s in self._stages])
        series_r = np.array([s.interconnect.esr for s in self._stages])
        capacitances = np.array([s.decap.capacitance for s in self._stages])
        cap_esr = np.array([s.decap.esr for s in self._stages])

        # Node voltage v_k = vC_k + r_k * (iL_k - downstream_current_k)
        # where downstream_current_k is iL_{k+1} for inner nodes and the
        # load current for the die node.  Express each v_k as a linear form
        # over (states, inputs) and assemble the ODEs from those forms.
        def node_voltage_form(k: int) -> Tuple[np.ndarray, np.ndarray]:
            """Return (state_coeffs, input_coeffs) for node voltage v_k."""
            sx = np.zeros(2 * n)
            su = np.zeros(2)
            sx[n + k] = 1.0  # vC_k
            sx[k] += cap_esr[k]  # + r_k * iL_k
            if k + 1 < n:
                sx[k + 1] -= cap_esr[k]  # - r_k * iL_{k+1}
            else:
                su[1] -= cap_esr[k]  # - r_k * I_load
            return sx, su

        node_x = []
        node_u = []
        for k in range(n):
            sx, su = node_voltage_form(k)
            node_x.append(sx)
            node_u.append(su)

        for k in range(n):
            # L_k * diL_k/dt = v_{k-1} - R_k * iL_k - v_k
            if k == 0:
                upstream_x = np.zeros(2 * n)
                upstream_u = np.array([1.0, 0.0])  # v_0 = V_source
            else:
                upstream_x = node_x[k - 1]
                upstream_u = node_u[k - 1]
            a[k, :] = (upstream_x - node_x[k]) / inductances[k]
            a[k, k] -= series_r[k] / inductances[k]
            b[k, :] = (upstream_u - node_u[k]) / inductances[k]

            # C_k * dvC_k/dt = iL_k - downstream_current_k
            a[n + k, k] = 1.0 / capacitances[k]
            if k + 1 < n:
                a[n + k, k + 1] = -1.0 / capacitances[k]
            else:
                b[n + k, 1] = -1.0 / capacitances[k]

        c[0, :] = node_x[n - 1]
        d[0, :] = node_u[n - 1]
        return a, b, c, d

    def dc_operating_point(self, load_current: float) -> np.ndarray:
        """Steady-state state vector for a constant ``load_current``.

        All inductors carry the load current; all capacitors sit at the
        node voltage implied by the cumulative series IR drop.
        """
        n = len(self._stages)
        state = np.zeros(2 * n)
        state[:n] = load_current
        drop = 0.0
        for k, stage in enumerate(self._stages):
            drop += stage.interconnect.esr * load_current
            state[n + k] = self._nominal_voltage - drop
        return state

    def die_voltage_dc(self, load_current: float) -> float:
        """Die-node voltage under a constant ``load_current``."""
        return self._nominal_voltage - self.dc_resistance * load_current

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        names = "/".join(s.name for s in self._stages)
        return (
            f"PowerDeliveryNetwork(stages={names}, "
            f"Vnom={self._nominal_voltage:.3f} V)"
        )
