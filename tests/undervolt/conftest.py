"""Shared fixtures for the undervolt-sweep battery.

Sweeps here run hermetic campaigns (no cache, serial) at a deliberately
tiny window so Hypothesis can afford several examples per property; a
module-level memo reuses campaigns across sweeps because the sweep only
ever *reads* measurements from them.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.measurement.campaign import MeasurementCampaign
from repro.undervolt import run_sweep

#: Small enough for fast tests, above the 1000-cycle campaign floor.
TINY_CYCLES = 2_000

WORKLOADS = ("lbm", "mcf", "mcf+lbm")
FREQUENCIES_GHZ = (1.66, 1.86)

_campaigns: Dict[Tuple[str, int, int, int], MeasurementCampaign] = {}


def hermetic_factory(
    config: str, n_cycles: int, seed: int, n_cores: int
) -> MeasurementCampaign:
    """Cache-free serial campaigns, memoized per coordinate."""
    key = (config, n_cycles, seed, n_cores)
    if key not in _campaigns:
        _campaigns[key] = MeasurementCampaign(
            config, n_cycles=n_cycles, seed=seed, jobs=1, n_cores=n_cores
        )
    return _campaigns[key]


def tiny_sweep(
    workloads=WORKLOADS,
    frequencies_ghz=FREQUENCIES_GHZ,
    core_counts=(2,),
    seed: int = 0,
):
    return run_sweep(
        workloads,
        frequencies_ghz=frequencies_ghz,
        core_counts=core_counts,
        n_cycles=TINY_CYCLES,
        seed=seed,
        campaign_factory=hermetic_factory,
    )


@pytest.fixture(scope="module")
def vmin_map():
    """One canonical tiny sweep shared by a module's read-only tests."""
    return tiny_sweep()
