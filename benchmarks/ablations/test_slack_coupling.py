"""Ablation: cross-core slack-pickup coupling on vs off.

Design choice under test: the chip model lets an actively running core
speed up when its sibling stalls (shared L2/bus slack).  This coupling is
the physical mechanism behind *destructive* interference — without it,
co-scheduling can only ever add noise, and the Droop scheduler loses most
of its leverage.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.measurement.droops import droop_samples_per_1k
from repro.uarch.chip import Chip
from repro.workloads.spec import spec_benchmark

PAIRS = [
    ("mcf", "namd"),      # staller + steady compute: pickup available
    ("mcf", "povray"),
    ("lbm", "gamess"),
    ("sphinx", "namd"),
]
N_CYCLES = 25_000
REPEATS = 3


def mean_droops(chip: Chip, a: str, b: str) -> float:
    values = []
    for rep in range(REPEATS):
        wa = spec_benchmark(a).sample_window(N_CYCLES, rng=100 + rep)
        wb = spec_benchmark(b).sample_window(N_CYCLES, rng=200 + rep)
        run = chip.run([wa, wb], seed=rep)
        values.append(droop_samples_per_1k(run.voltage))
    return float(np.mean(values))


def test_ablation_slack_coupling(benchmark, quick):
    def experiment():
        coupled = Chip("Proc3", slack_coupling=0.35)
        uncoupled = Chip("Proc3", slack_coupling=0.0)
        rows = []
        for a, b in PAIRS:
            rows.append((a, b, mean_droops(coupled, a, b),
                         mean_droops(uncoupled, a, b)))
        return rows

    rows = run_once(benchmark, experiment)
    with_coupling = np.array([r[2] for r in rows])
    without = np.array([r[3] for r in rows])
    # Slack pickup damps chip-wide droops for staller/steady pairs —
    # the destructive-interference headroom the scheduler exploits.
    assert with_coupling.mean() < without.mean()
    # And the effect is substantial, not a rounding artifact.
    assert with_coupling.mean() < 0.9 * without.mean()
