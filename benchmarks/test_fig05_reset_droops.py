"""Bench: Fig. 5(m-r) — reset droop response per decap configuration."""

from benchmarks.conftest import run_once
from repro.experiments import fig05_reset_droops
from repro.pdn.platform import WORST_CASE_MARGIN


def test_fig05_reset_droops(benchmark, quick):
    result = run_once(benchmark, lambda: fig05_reset_droops.run(quick=quick))
    traces = result.series["traces"]
    droops = {name: t.max_droop_fraction() for name, t in traces.items()}
    order = ["Proc100", "Proc75", "Proc50", "Proc25", "Proc3", "Proc0"]
    values = [droops[name] for name in order]
    # Droops deepen monotonically with decap removal.
    assert all(a <= b * 1.02 for a, b in zip(values, values[1:]))
    # Stock droop is within the shipped margin; Proc0's breaks it (the
    # paper's "cannot boot" observation).
    assert droops["Proc100"] < WORST_CASE_MARGIN
    assert droops["Proc0"] > WORST_CASE_MARGIN
    # Absolute scale: stock in the ~100-200 mV class, Proc0 in the
    # ~300-450 mV class (paper: 150 mV -> 350 mV).
    nominal = traces["Proc100"].nominal_voltage
    assert 0.05 <= droops["Proc100"] * nominal <= 0.2
    assert 0.25 <= droops["Proc0"] * nominal <= 0.5
    print("\n" + result.format_table())
