"""Known bug: the result-cache key folds in host identity.

Two machines running the identical (spec, config, seed) campaign hash
to different keys, so a shared cache never hits across hosts — and the
host name silently becomes part of result identity.
"""

from __future__ import annotations

import hashlib
import os


def cache_key(label: str, seed: int) -> str:
    host = os.uname().nodename
    payload = f"{label}:{seed}:{host}".encode("ascii")
    return hashlib.sha256(payload).hexdigest()  # expect: TNT005
