"""Co-scheduling policies (Sec. IV-C).

A policy scores candidate pairings; the batch scheduler picks, for each
job it places, the partner with the best score.  The paper compares:

* **Droop** — minimize predicted chip-wide droops (emergency recoveries);
  the paper's proposed noise-aware policy.
* **IPC** — maximize predicted pair throughput; the classic
  contention-aware performance policy.
* **IPC/Droop^n** — the hybrid the paper proposes for balancing the two,
  with the exponent ``n`` growing with the platform's recovery cost.
* **Random** — the control; mimics SPECrate's indifference to noise.
* **SPECrate** — the baseline: every program paired with itself.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError, SchedulingError
from repro.random_utils import SeedLike, as_generator

#: Droop rates can be zero for quiet pairs; the hybrid metric floors them.
DROOP_EPSILON = 1e-7


class SchedulingPolicy(abc.ABC):
    """Scores candidate co-schedules; higher is better."""

    name: str = "policy"

    @abc.abstractmethod
    def score(self, a: str, b: str, oracle) -> float:
        """Desirability of running ``a`` and ``b`` together."""

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}()"


class DroopPolicy(SchedulingPolicy):
    """Minimize chip-wide droop (emergency) rates."""

    name = "Droop"

    def score(self, a: str, b: str, oracle) -> float:
        return -oracle.droop_metric(a, b)


class IPCPolicy(SchedulingPolicy):
    """Maximize pair throughput (sum of the two cores' IPC)."""

    name = "IPC"

    def score(self, a: str, b: str, oracle) -> float:
        return oracle.ipc_metric(a, b)


class HybridPolicy(SchedulingPolicy):
    """The paper's IPC/Droop^n metric.

    Small ``n`` weighs throughput (fine-grained recovery, cheap
    emergencies); large ``n`` weighs noise (coarse-grained recovery,
    expensive emergencies).
    """

    def __init__(self, exponent: float = 1.0) -> None:
        if exponent < 0:
            raise ConfigurationError("exponent must be non-negative")
        self.exponent = float(exponent)
        self.name = f"IPC/Droop^{exponent:g}"

    @classmethod
    def for_recovery_cost(cls, recovery_cost: float) -> "HybridPolicy":
        """Pick ``n`` from the platform's recovery cost.

        The paper argues n should be small for fine-grained schemes and
        larger for coarse-grained ones; a logarithmic ramp captures that.
        """
        if recovery_cost < 1:
            raise ConfigurationError("recovery_cost must be >= 1")
        exponent = 0.25 + 0.35 * np.log10(recovery_cost)
        return cls(exponent=float(exponent))

    def score(self, a: str, b: str, oracle) -> float:
        droops = max(oracle.droop_metric(a, b), DROOP_EPSILON)
        return oracle.ipc_metric(a, b) / droops**self.exponent


class StallRatioPolicy(SchedulingPolicy):
    """Droop avoidance from commodity counters only.

    A deployable approximation of :class:`DroopPolicy`: instead of oracle
    droop measurements per *pair*, it uses each program's solo stall
    ratio — readable from performance counters on any machine, which is
    the software loop the paper's Fig. 15 correlation (droops ~ stall
    ratio, r = 0.97) licenses.  Scoring minimizes the pair's *worst*
    stall ratio, which pairs stall-heavy programs with steady low-stall
    partners — the combination whose slack pickup dampens chip-wide
    current swings.
    """

    name = "StallRatio"

    def score(self, a: str, b: str, oracle) -> float:
        return -max(oracle.stall_metric(a), oracle.stall_metric(b))


class RandomPolicy(SchedulingPolicy):
    """Uniformly random pairing (the paper's 100-random-schedules control)."""

    name = "Random"

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = as_generator(seed)

    def score(self, a: str, b: str, oracle) -> float:
        return float(self._rng.random())


class SPECratePolicy(SchedulingPolicy):
    """The baseline: self-pairs only."""

    name = "SPECrate"

    def score(self, a: str, b: str, oracle) -> float:
        if a != b:
            raise SchedulingError("SPECrate only pairs a program with itself")
        return 0.0
