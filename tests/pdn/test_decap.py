"""Unit tests for the decap inventory and ProcXX configurations."""

import pytest

from repro.errors import ConfigurationError
from repro.pdn.decap import (
    PARASITIC_FRACTION,
    PROC_CONFIGS,
    CapacitorBank,
    capacitance_summary,
    ordered_configs,
    proc_config,
)


class TestCapacitorBank:
    def test_totals(self):
        bank = CapacitorBank(22e-6, 18e-3, 8)
        assert bank.total_capacitance == pytest.approx(176e-6)
        assert bank.effective_esr == pytest.approx(18e-3 / 8)

    def test_empty_bank_has_infinite_esr(self):
        bank = CapacitorBank(1e-6, 10e-3, 0)
        assert bank.total_capacitance == 0.0  # simlint: disable=HYG001 (exact by construction)
        assert bank.effective_esr == float("inf")

    def test_keep_bounds(self):
        bank = CapacitorBank(1e-6, 10e-3, 4)
        assert bank.keep(2).count == 2
        with pytest.raises(ConfigurationError):
            bank.keep(5)
        with pytest.raises(ConfigurationError):
            bank.keep(-1)


class TestProcFamily:
    def test_all_six_members_exist(self):
        assert set(PROC_CONFIGS) == {
            "Proc100",
            "Proc75",
            "Proc50",
            "Proc25",
            "Proc3",
            "Proc0",
        }

    def test_capacitance_monotonically_decreasing(self):
        caps = [cfg.total_capacitance for cfg in ordered_configs()]
        assert all(a > b for a, b in zip(caps, caps[1:]))

    def test_fractions_near_nominal_labels(self):
        # The per-kind part counts should land close to the advertised
        # percentage (exact match is impossible with discrete parts).
        for name, target in [("Proc100", 1.0), ("Proc75", 0.75),
                             ("Proc50", 0.50), ("Proc25", 0.25),
                             ("Proc3", 0.03)]:
            cfg = proc_config(name)
            assert cfg.fraction == pytest.approx(target, abs=0.02), name

    def test_proc0_keeps_only_parasitics(self):
        cfg = proc_config("Proc0")
        assert cfg.total_capacitance == 0.0  # simlint: disable=HYG001 (exact by construction)
        assert cfg.fraction == pytest.approx(PARASITIC_FRACTION)
        assert all(bank.count == 0 for bank in cfg.banks)

    def test_only_proc0_fails_boot(self):
        for cfg in ordered_configs():
            assert cfg.boots == (cfg.name != "Proc0")

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            proc_config("Proc42")

    def test_summary_covers_all(self):
        summary = capacitance_summary()
        assert list(summary) == [c.name for c in ordered_configs()]

    def test_proc3_keeps_some_small_parts(self):
        """3 % of each kind rounds to zero; the greedy adjustment must
        still populate a few small-value parts (paper Fig. 5k)."""
        cfg = proc_config("Proc3")
        assert sum(bank.count for bank in cfg.banks) > 0
