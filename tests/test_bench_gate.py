"""The benchmark-regression gate's comparison logic and baseline file."""

import json
from pathlib import Path

from benchmarks.gate import (
    DEFAULT_TOLERANCE,
    MIN_GATED_SCORE,
    UNITS,
    compare,
    normalize,
)

BASELINE = Path(__file__).parent.parent / "benchmarks" / "baseline.json"


class TestCompare:
    def test_within_tolerance_passes(self):
        assert compare({"a": 1.2}, {"a": 1.0}, 0.25) == []

    def test_regression_fails(self):
        failures = compare({"a": 1.3}, {"a": 1.0}, 0.25)
        assert len(failures) == 1
        assert "a" in failures[0]

    def test_improvement_passes(self):
        assert compare({"a": 0.1}, {"a": 1.0}, 0.25) == []

    def test_missing_unit_fails(self):
        failures = compare({}, {"a": 1.0}, 0.25)
        assert failures == ["a: present in baseline but not timed"]

    def test_unknown_unit_fails(self):
        failures = compare({"a": 1.0, "new": 1.0}, {"a": 1.0}, 0.25)
        assert len(failures) == 1
        assert "new" in failures[0]

    def test_noise_floor_not_gated(self):
        # Both sides under the floor: too fast to time, never a failure.
        tiny = MIN_GATED_SCORE / 4
        assert compare({"a": tiny * 2}, {"a": tiny}, 0.25) == []

    def test_normalize(self):
        assert normalize({"a": 1.0, "b": 0.5}, 2.0) == {"a": 0.5, "b": 0.25}


class TestBaselineFile:
    def test_committed_baseline_matches_pinned_units(self):
        payload = json.loads(BASELINE.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert set(payload["units"]) == {name for name, _ in UNITS}
        assert 0 < payload["tolerance"] <= 1
        assert payload["tolerance"] == DEFAULT_TOLERANCE

    def test_baseline_scores_are_gateable(self):
        payload = json.loads(BASELINE.read_text(encoding="utf-8"))
        for name, score in payload["units"].items():
            assert score >= MIN_GATED_SCORE, (
                f"unit {name!r} is too fast to gate reliably; make it "
                "heavier or drop it from the pinned set"
            )
