"""Unit tests for the performance-counter model."""

import pytest

from repro.errors import ConfigurationError
from repro.uarch.counters import PerformanceCounters
from repro.uarch.events import StallEvent


class TestPerformanceCounters:
    def test_derived_metrics(self):
        counters = PerformanceCounters(
            cycles=1000, instructions=1500.0, stall_cycles=250,
        )
        assert counters.ipc == pytest.approx(1.5)
        assert counters.stall_ratio == pytest.approx(0.25)

    def test_event_counts_default_zero(self):
        counters = PerformanceCounters(cycles=10, instructions=1, stall_cycles=0)
        assert counters.event_count(StallEvent.L2_MISS) == 0

    def test_merge_adds_everything(self):
        a = PerformanceCounters(
            cycles=100, instructions=150, stall_cycles=20,
            event_counts={StallEvent.L1_MISS: 3},
        )
        b = PerformanceCounters(
            cycles=300, instructions=150, stall_cycles=80,
            event_counts={StallEvent.L1_MISS: 2, StallEvent.TLB_MISS: 1},
        )
        merged = a.merged_with(b)
        assert merged.cycles == 400
        assert merged.instructions == 300
        assert merged.stall_cycles == 100
        assert merged.event_count(StallEvent.L1_MISS) == 5
        assert merged.event_count(StallEvent.TLB_MISS) == 1
        assert merged.ipc == pytest.approx(300 / 400)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PerformanceCounters(cycles=0, instructions=0, stall_cycles=0)
        with pytest.raises(ConfigurationError):
            PerformanceCounters(cycles=10, instructions=-1, stall_cycles=0)
        with pytest.raises(ConfigurationError):
            PerformanceCounters(cycles=10, instructions=0, stall_cycles=11)
