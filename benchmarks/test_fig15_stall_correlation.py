"""Bench: Fig. 15 — droops strongly correlate with the stall ratio."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig15_stall_correlation


def test_fig15_stall_correlation(benchmark, quick):
    result = run_once(
        benchmark, lambda: fig15_stall_correlation.run(quick=quick)
    )
    correlation = result.series["correlation"]
    # A heterogeneous mix of noise levels across the suite.
    droops = correlation.droops_per_1k
    assert droops.max() > 2.0 * max(droops.min(), 1.0)
    # Strong positive linear correlation with the counter-derived stall
    # ratio (paper: 0.97; simulator sampling noise grants head-room).
    assert correlation.pearson_r > 0.6
    assert correlation.spearman_rho > 0.5
    # Stall ratios themselves span a meaningful range.
    assert correlation.stall_ratios.max() - correlation.stall_ratios.min() > 0.2
    print("\n" + result.format_table())
