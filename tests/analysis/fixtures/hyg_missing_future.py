"""Fixture: module with definitions but no ``__future__`` import (HYG005).

Never imported — parsed by simlint only.  The HYG005 finding is reported
on line 1; tests/analysis/test_rules.py asserts it directly.
"""


def helper(margin: float) -> float:
    return margin * 2.0
