"""Benchmark-regression gate: timed pinned units vs a committed baseline.

CI times a pinned subset of the benchmark suite and fails when any unit
regresses by more than the tolerance (default 25%) against
``benchmarks/baseline.json``.  Raw wall times are useless across machine
generations, so every unit is *normalized*: the gate first times a fixed
numpy calibration workload on the same machine and records each unit as
``unit_seconds / calibration_seconds``.  A faster runner speeds both
numerator and denominator; genuine regressions in the simulation code
move only the numerator.

Usage::

    PYTHONPATH=src python benchmarks/gate.py --output BENCH_5.json
    PYTHONPATH=src python benchmarks/gate.py --update-baseline

The ``--output`` report (uploaded as a CI artifact) carries raw seconds,
normalized scores, the baseline and the verdict for every unit, so a
failing gate is diagnosable from the artifact alone.  ``--update-baseline``
rewrites ``benchmarks/baseline.json`` from this machine's scores — run it
deliberately when a known, accepted performance change lands.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro import observability as obs

DEFAULT_TOLERANCE = 0.25
DEFAULT_REPEATS = 3
BASELINE_PATH = Path(__file__).parent / "baseline.json"

#: Units whose normalized score falls below this are too fast to gate
#: reliably (timer noise dominates); they are reported but never fail.
MIN_GATED_SCORE = 0.05


def _calibrate() -> float:
    """Seconds for a fixed numpy workload — the machine-speed yardstick.

    FFTs plus sorts over a fixed-seed array: the same mix of vectorized
    numerics that dominates the simulation, so machine-to-machine speed
    differences cancel to first order in the normalized scores.
    """
    rng = np.random.default_rng(0)
    data = rng.standard_normal(200_000)
    start = obs.monotonic_seconds()
    for _ in range(20):
        np.fft.rfft(data)
        np.sort(data)
    return obs.monotonic_seconds() - start


def _unit_scaling_trends() -> None:
    """Analytic experiment: scaling/analysis layer, no campaign.

    Run several times per timing: one pass is too quick to time stably.
    """
    from repro.experiments import fig01_scaling_trends

    for _ in range(8):
        fig01_scaling_trends.run(quick=True)


def _unit_campaign_quad() -> None:
    """Four representative runs through the full measurement pipeline."""
    from repro.measurement.campaign import MeasurementCampaign

    campaign = MeasurementCampaign("Proc25", n_cycles=30_000, seed=0, jobs=1)
    campaign.measure_specs([
        campaign.run_spec(*token.split("+"))
        for token in ("mcf", "lbm", "mcf+lbm", "namd+povray")
    ])


def _unit_campaign_throughput() -> None:
    """A 16-run quad-core mixed campaign through the serial executor.

    Exercises exactly what the vectorized hot path accelerates: window
    synthesis, activity/EMA realization, the batched PDN solve and the
    droop/histogram reduction, across all three run kinds.  The unit is
    additionally pinned by :data:`SPEEDUP_REFERENCES` — it must stay at
    least 5x faster than its measured pre-vectorization score.
    """
    from repro.measurement.campaign import MeasurementCampaign

    campaign = MeasurementCampaign(
        "Proc100", n_cycles=20_000, seed=7, jobs=1, n_cores=4
    )
    singles = [
        campaign.run_spec(name, kind="single")
        for name in ("mcf", "lbm", "milc", "sjeng")
    ]
    groups = [
        campaign.run_spec(*group, kind="multiprogram")
        for group in (
            ("mcf", "lbm", "namd", "povray"),
            ("gcc", "bzip2", "milc", "sjeng"),
            ("mcf", "milc", "lbm", "gcc"),
            ("namd", "povray", "sjeng", "bzip2"),
        )
    ]
    specrate = [
        campaign.run_spec(name, name, name, name, kind="multiprogram")
        for name in ("mcf", "lbm", "namd", "povray")
    ]
    threaded = [
        campaign.run_spec(name, kind="multithread")
        for name in ("canneal", "dedup", "ferret", "x264")
    ]
    campaign.measure_specs(singles + groups + specrate + threaded)


def _unit_pairing_sweep() -> None:
    """A 4x4 multiprogram pairing sweep (the Fig. 17-19 workhorse)."""
    from repro.measurement.campaign import MeasurementCampaign

    campaign = MeasurementCampaign("Proc3", n_cycles=10_000, seed=0, jobs=1)
    campaign.multiprogram_runs(("mcf", "namd", "lbm", "povray"))


def _unit_policy_arena() -> None:
    """The full policy arena on the micro suite, dual- and quad-core.

    Exercises the N-core campaign path, every registered policy's
    proposal, the exhaustive oracle search and the scorecard pipeline —
    the whole ISSUE-7 stack in one unit.
    """
    from repro.arena import run_arena
    from repro.measurement.campaign import MeasurementCampaign

    for n_cores in (2, 4):
        campaign = MeasurementCampaign(
            "Proc3", n_cycles=12_000, seed=0, jobs=1, n_cores=n_cores
        )
        run_arena(suite="micro", n_cores=n_cores, campaign=campaign)


def _unit_undervolt_sweep() -> None:
    """A hermetic Vmin sweep plus the below-Vmin bit-error probe.

    Times the whole ISSUE-10 stack: the per-core-count campaign
    measurements feeding the map, the critical-voltage inversion per
    frequency column, frontier extraction, and a 40 mV probe whose
    injected bit errors the executor must retry away.  Campaigns are
    built fresh inside the unit (no persistent cache) so every timing
    is a full cold characterization.
    """
    from repro.measurement.campaign import MeasurementCampaign
    from repro.undervolt import probe_below_vmin, run_sweep

    def factory(
        config: str, n_cycles: int, seed: int, n_cores: int
    ) -> MeasurementCampaign:
        return MeasurementCampaign(
            config, n_cycles=n_cycles, seed=seed, jobs=1, n_cores=n_cores
        )

    vmin_map = run_sweep(
        workloads=("lbm", "mcf", "mcf+lbm", "namd+povray"),
        core_counts=(2, 4),
        config="Proc100",
        n_cycles=10_000,
        campaign_factory=factory,
    )
    probe_below_vmin(vmin_map, 0.04)


def _unit_simlint_flow() -> None:
    """A cold-cache ``--flow`` lint of src/repro (all four flow passes).

    The flow engine's cost is dominated by the dimension/concurrency/
    taint/cost fixpoints over the whole project, so this unit catches
    superlinear regressions in any of them.  No lint cache is passed:
    every timing is a full cold analysis.
    """
    import repro
    from repro.analysis.flow.engine import flow_paths

    flow_paths([str(Path(repro.__file__).parent)])


def _unit_simlint_hotspots() -> None:
    """The ``simlint hotspots`` analyzer half over src/repro.

    Times the interprocedural cost fixpoint, the hot-closure BFS and
    the finding/stage join on their own — the analyzer runtime the
    PERF family adds beyond the other flow passes.
    """
    import repro
    from repro.analysis.engine import iter_python_files
    from repro.analysis.hotspots import hotspots_report

    sources = {}
    for filename in iter_python_files([str(Path(repro.__file__).parent)]):
        with open(filename, "r", encoding="utf-8") as handle:
            sources[filename] = handle.read()
    hotspots_report(sources)


#: The pinned gate subset.  Add units sparingly: each must be slow
#: enough to time stably (see MIN_GATED_SCORE) and deterministic.
UNITS: Tuple[Tuple[str, Callable[[], None]], ...] = (
    ("scaling_trends", _unit_scaling_trends),
    ("campaign_quad", _unit_campaign_quad),
    ("campaign_throughput", _unit_campaign_throughput),
    ("pairing_sweep", _unit_pairing_sweep),
    ("policy_arena", _unit_policy_arena),
    ("undervolt_sweep", _unit_undervolt_sweep),
    ("simlint_flow", _unit_simlint_flow),
    ("simlint_hotspots", _unit_simlint_hotspots),
)

#: Absolute speed-up pins: ``name -> (reference_score, min_speedup)``.
#: Unlike the baseline (which only catches *regressions* against the
#: last accepted run), these assert that a unit stays at least
#: ``min_speedup`` times faster than a frozen historical score — here,
#: ``campaign_throughput``'s normalized score measured immediately
#: before the hot-path vectorization (best-of-3 1.847 s raw against a
#: 0.089 s calibration).  The gate fails if the score ever creeps back
#: above ``reference / min_speedup``, even when it gets there one
#: within-tolerance step at a time.
SPEEDUP_REFERENCES: Dict[str, Tuple[float, float]] = {
    "campaign_throughput": (20.7, 5.0),
}


def time_units(repeats: int = DEFAULT_REPEATS) -> Dict[str, float]:
    """Best-of-``repeats`` wall seconds per unit (min discards noise)."""
    seconds: Dict[str, float] = {}
    for name, fn in UNITS:
        best = float("inf")
        for _ in range(repeats):
            start = obs.monotonic_seconds()
            fn()
            best = min(best, obs.monotonic_seconds() - start)
        seconds[name] = best
    return seconds


def normalize(
    seconds: Dict[str, float], calibration: float
) -> Dict[str, float]:
    return {name: value / calibration for name, value in seconds.items()}


def compare(
    scores: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float,
) -> List[str]:
    """Failure messages for units regressing past the tolerance."""
    failures: List[str] = []
    for name, base in sorted(baseline.items()):
        got = scores.get(name)
        if got is None:
            failures.append(f"{name}: present in baseline but not timed")
            continue
        if base < MIN_GATED_SCORE and got < MIN_GATED_SCORE:
            continue  # both under the timing-noise floor
        if got > base * (1.0 + tolerance):
            failures.append(
                f"{name}: score {got:.3f} exceeds baseline {base:.3f} "
                f"by more than {tolerance:.0%}"
            )
    for name in sorted(set(scores) - set(baseline)):
        failures.append(
            f"{name}: not in the baseline — refresh it with "
            "--update-baseline"
        )
    for name, (reference, min_speedup) in sorted(SPEEDUP_REFERENCES.items()):
        got = scores.get(name)
        ceiling = reference / min_speedup
        if got is not None and got > ceiling:
            failures.append(
                f"{name}: score {got:.3f} is less than {min_speedup:g}x "
                f"faster than the pre-vectorization reference "
                f"{reference:.3f} (ceiling {ceiling:.3f})"
            )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the full gate report as JSON (the CI artifact)",
    )
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), metavar="FILE",
        help=f"baseline scores to gate against (default: {BASELINE_PATH})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None, metavar="FRACTION",
        help="allowed regression (default: the baseline's own tolerance, "
        f"else {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS, metavar="N",
        help=f"timings per unit, best kept (default: {DEFAULT_REPEATS})",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from this run's scores and exit",
    )
    args = parser.parse_args(argv)

    calibration = _calibrate()
    seconds = time_units(repeats=args.repeats)
    scores = normalize(seconds, calibration)
    print(f"calibration: {calibration:.3f} s")
    for name in sorted(scores):
        print(
            f"{name}: {seconds[name]:.3f} s "
            f"(normalized score {scores[name]:.3f})"
        )

    if args.update_baseline:
        payload = {
            "version": 1,
            "tolerance": (
                DEFAULT_TOLERANCE if args.tolerance is None
                else args.tolerance
            ),
            "units": {name: round(scores[name], 4) for name in sorted(scores)},
        }
        Path(args.baseline).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"baseline written to {args.baseline}")
        return 0

    baseline_path = Path(args.baseline)
    if not baseline_path.is_file():
        print(
            f"gate: no baseline at {baseline_path}; seed one with "
            "--update-baseline",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    tolerance = (
        args.tolerance if args.tolerance is not None
        else float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    )
    failures = compare(scores, baseline["units"], tolerance)

    if args.output:
        report = {
            "version": 1,
            "machine": platform.machine(),
            "python": platform.python_version(),
            "calibration_seconds": round(calibration, 4),
            "tolerance": tolerance,
            "units": {
                name: {
                    "seconds": round(seconds[name], 4),
                    "score": round(scores[name], 4),
                    "baseline": baseline["units"].get(name),
                }
                for name in sorted(scores)
            },
            "failures": failures,
            "passed": not failures,
        }
        Path(args.output).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
        print(f"report written to {args.output}")

    if failures:
        for line in failures:
            print(f"gate: {line}", file=sys.stderr)
        return 1
    print(f"gate: all {len(scores)} units within {tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
