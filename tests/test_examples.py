"""Smoke tests for the example scripts.

The quickstart runs end to end (it is fast); the longer walk-throughs are
checked for a clean import and a ``main`` entry point, which catches API
drift without paying their full runtime in the unit-test suite.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = (
    "quickstart.py",
    "characterize_noise.py",
    "future_nodes.py",
    "noise_aware_scheduling.py",
    "parallel_sweep.py",
    "recovery_design_space.py",
)


def _load(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_exist(self):
        for name in ALL_EXAMPLES:
            assert (EXAMPLES_DIR / name).is_file(), name

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_defines_main(self, name):
        module = _load(name)
        assert callable(getattr(module, "main", None)), name

    def test_quickstart_runs(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "peak-to-peak swing" in completed.stdout
        assert "stall ratio" in completed.stdout
