"""Unit tests for the cross-core slack-pickup coupling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch.chip import SLACK_PICKUP_GATE, Chip
from repro.uarch.events import StallEvent
from repro.uarch.window import ExecutionWindow

N = 6000


def window(activity, events=(), label="w"):
    return ExecutionWindow(
        baseline_activity=np.full(N, activity),
        events=list(events),
        base_ipc=1.5,
        label=label,
    )


class TestSlackCoupling:
    def test_sibling_picks_up_stall_slack(self):
        """When core 0 stalls deeply, an active core 1 speeds up."""
        chip = Chip("Proc100", with_ripple=False, slack_coupling=0.35)
        staller = window(0.9, [(3000, StallEvent.L2_MISS)])
        steady = window(0.7)
        run = chip.run([staller, steady])
        # During core 0's stall, core 1's realized activity rises above
        # its baseline.
        stall_region = slice(3050, 3200)
        assert run.cores[1].activity[stall_region].mean() > 0.71

    def test_no_coupling_means_no_pickup(self):
        chip = Chip("Proc100", with_ripple=False, slack_coupling=0.0)
        staller = window(0.9, [(3000, StallEvent.L2_MISS)])
        steady = window(0.7)
        run = chip.run([staller, steady])
        assert np.allclose(run.cores[1].activity, 0.7)

    def test_idle_sibling_cannot_pick_up(self):
        """The pickup gate: only actively running cores speed up."""
        chip = Chip("Proc100", with_ripple=False, slack_coupling=0.35)
        staller = window(0.9, [(3000, StallEvent.L2_MISS)])
        nearly_idle = window(SLACK_PICKUP_GATE / 2)
        run = chip.run([staller, nearly_idle])
        assert np.allclose(
            run.cores[1].activity, SLACK_PICKUP_GATE / 2, atol=1e-9
        )

    def test_coupling_damps_chip_current_swing(self):
        staller = window(0.9, [(i, StallEvent.L2_MISS)
                               for i in range(500, N - 500, 800)])
        steady = window(0.7)
        coupled = Chip("Proc100", with_ripple=False, slack_coupling=0.35)
        uncoupled = Chip("Proc100", with_ripple=False, slack_coupling=0.0)
        swing_coupled = np.ptp(coupled.run([staller, steady]).total_current_amps)
        swing_uncoupled = np.ptp(
            uncoupled.run([staller, steady]).total_current_amps
        )
        assert swing_coupled < swing_uncoupled

    def test_aligned_stalls_get_no_relief(self):
        """Both cores stalled together: nobody picks up the slack —
        constructive interference goes through at full amplitude."""
        events = [(3000, StallEvent.EXCEPTION)]
        a = window(0.9, events)
        b = window(0.9, events)
        coupled = Chip("Proc100", with_ripple=False, slack_coupling=0.35)
        uncoupled = Chip("Proc100", with_ripple=False, slack_coupling=0.0)
        drop_coupled = coupled.run([a, b]).total_current_amps.min()
        drop_uncoupled = uncoupled.run([a, b]).total_current_amps.min()
        assert drop_coupled == pytest.approx(drop_uncoupled, abs=0.6)

    def test_coupling_boosts_sibling_counters(self):
        """Picked-up slack is real work: IPC rises with it."""
        chip = Chip("Proc100", with_ripple=False, slack_coupling=0.35)
        plain = Chip("Proc100", with_ripple=False, slack_coupling=0.0)
        staller = window(0.9, [(i, StallEvent.L2_MISS)
                               for i in range(500, N - 500, 600)])
        steady = window(0.7)
        with_pickup = chip.run([staller, steady]).counters(1).ipc
        without = plain.run([staller, steady]).counters(1).ipc
        assert with_pickup > without

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Chip(slack_coupling=1.5)
        with pytest.raises(ConfigurationError):
            Chip(slack_coupling=-0.1)
