"""Unit tests for the experiment result container."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult


class TestExperimentResult:
    def test_add_row_checks_arity(self):
        result = ExperimentResult("Fig. X", "test", columns=("a", "b"))
        result.add_row(1, 2)
        with pytest.raises(ConfigurationError):
            result.add_row(1)

    def test_format_table_contains_everything(self):
        result = ExperimentResult("Fig. X", "demo", columns=("name", "value"))
        result.add_row("alpha", 1.2345678)
        result.notes.append("a note")
        text = result.format_table()
        assert "Fig. X" in text
        assert "alpha" in text
        assert "1.235" in text  # 4 significant digits
        assert "note: a note" in text

    def test_empty_table(self):
        result = ExperimentResult("Fig. Y", "empty")
        assert "(no rows)" in result.format_table()
