#!/usr/bin/env python
"""Characterize voltage noise the way Secs. II-III of the paper do.

Reproduces the paper's characterization flow end to end:

1. reconstruct the platform impedance profile and locate its resonance;
2. stimulate one core with each stall-event microbenchmark and rank the
   resulting swings against an idling machine (Fig. 12);
3. run every event pair across both cores and find the worst
   constructive-interference pairing (Fig. 13).

Run:  python examples/characterize_noise.py
"""

from repro import Chip, ImpedanceProfile, build_network
from repro.core.interference import (
    event_interference_matrix,
    single_core_event_swings,
)

N_CYCLES = 40_000


def main() -> None:
    # --- 1. impedance profile -----------------------------------------
    stock = ImpedanceProfile.from_network(build_network("Proc100"))
    peak = stock.peak()
    print("== Impedance profile (stock package) ==")
    print(f"resonance: {peak.impedance_ohm * 1e3:.2f} mOhm "
          f"at {peak.frequency_hz / 1e6:.0f} MHz "
          "(paper: peak in the 100-200 MHz band)")
    depleted = ImpedanceProfile.from_network(build_network("Proc3"))
    print(f"Proc3 / Proc100 at 1 MHz: "
          f"{depleted.ratio_to(stock, 1e6):.1f}x (paper: ~5x)")
    print()

    # --- 2. single-core event swings ----------------------------------
    chip = Chip("Proc100")
    swings = single_core_event_swings(chip, n_cycles=N_CYCLES)
    print("== Single-core event swings vs idle (Fig. 12) ==")
    for event, value in sorted(swings.items(), key=lambda kv: kv[1]):
        print(f"  {event.label:5s} {value:5.2f}x")
    worst_single = max(swings.values())
    print(f"largest: {max(swings, key=swings.get).label} "
          "(paper: BR at >1.7x)")
    print()

    # --- 3. cross-core interference matrix ----------------------------
    matrix, events = event_interference_matrix(chip, n_cycles=N_CYCLES)
    print("== Cross-core interference (Fig. 13) ==")
    header = "        " + "  ".join(f"{e.label:>5s}" for e in events)
    print(header)
    for i, event in enumerate(events):
        row = "  ".join(f"{v:5.2f}" for v in matrix[i])
        print(f"  {event.label:5s} {row}")
    import numpy as np

    i, j = np.unravel_index(np.argmax(matrix), matrix.shape)
    print(f"worst pair: {events[i].label}+{events[j].label} at "
          f"{matrix.max():.2f}x idle, "
          f"{matrix.max() / worst_single - 1:+.0%} over single-core "
          "(paper: EXCP+EXCP, +42%)")


if __name__ == "__main__":
    main()
