"""Fig. 12 — single-core stall-event voltage swings relative to idle.

Paper: every stall-event microbenchmark swings the supply beyond the
idling machine's ripple, with branch mispredictions the largest at over
1.7x idle (the pipeline flush is the sharpest dI/dt event), and L1 misses
the mildest.
"""

from __future__ import annotations

from repro.core.interference import single_core_event_swings
from repro.experiments.common import ExperimentResult
from repro.uarch.chip import Chip
from repro.uarch.events import StallEvent


def run(quick: bool = False, config: str = "Proc100") -> ExperimentResult:
    chip = Chip(config, with_ripple=True)
    swings = single_core_event_swings(
        chip,
        n_cycles=25_000 if quick else 50_000,
        repeats=2 if quick else 3,
    )
    result = ExperimentResult(
        experiment_id="Fig. 12",
        title="Peak-to-peak swing of stall-event kernels relative to idle",
        columns=("event", "swing vs idle"),
    )
    for event in StallEvent:
        result.add_row(event.label, swings[event])
    result.series["swings"] = swings
    biggest = max(swings, key=swings.get)
    result.notes.append(
        f"largest single-core swing: {biggest.label} at "
        f"{swings[biggest]:.2f}x idle (paper: BR, >1.7x)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
