"""Known bug: counts undershoots with a Python loop over the trace.

The per-cycle voltage trace is millions of samples per run; walking it
in the interpreter dominates the simulate span when a single numpy
comparison over the whole array would do.
"""

from __future__ import annotations

from typing import Sequence


def simulate(trace_samples: Sequence[float], threshold: float) -> int:
    undershoots = 0
    for value in trace_samples:  # expect: PERF001
        if value < threshold:
            undershoots = undershoots + 1
    return undershoots
