"""Unit tests for passive elements and impedance algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.pdn.elements import Capacitor, Inductor, Resistor, parallel, series

OMEGA = 2.0 * np.pi * 1e6  # 1 MHz


class TestResistor:
    def test_impedance_is_real_and_flat(self):
        r = Resistor(0.5)
        z = r.impedance(np.array([1.0, 1e3, 1e9]))
        assert np.allclose(z, 0.5)
        assert np.all(z.imag == 0)

    def test_zero_resistance_allowed(self):
        assert Resistor(0.0).impedance(1.0) == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_negative_resistance_rejected(self):
        with pytest.raises(ConfigurationError):
            Resistor(-1.0)


class TestInductor:
    def test_impedance_grows_linearly_with_frequency(self):
        ind = Inductor(1e-9)
        z1 = ind.impedance(OMEGA)
        z2 = ind.impedance(2 * OMEGA)
        assert np.isclose(z2.imag, 2 * z1.imag)
        assert z1.real == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_esr_appears_in_real_part(self):
        ind = Inductor(1e-9, esr=0.25)
        assert np.isclose(ind.impedance(OMEGA).real, 0.25)

    def test_rejects_non_positive_inductance(self):
        with pytest.raises(ConfigurationError):
            Inductor(0.0)


class TestCapacitor:
    def test_impedance_falls_with_frequency(self):
        cap = Capacitor(1e-6)
        z1 = abs(cap.impedance(OMEGA))
        z2 = abs(cap.impedance(2 * OMEGA))
        assert np.isclose(z2, z1 / 2)

    def test_esr_floor(self):
        cap = Capacitor(1e-6, esr=0.01)
        # At very high frequency the ESR dominates.
        z = cap.impedance(2 * np.pi * 1e12)
        assert np.isclose(z.real, 0.01)
        assert abs(z.imag) < 1e-3

    def test_dc_impedance_rejected(self):
        with pytest.raises(ConfigurationError):
            Capacitor(1e-6).impedance(0.0)

    def test_scaled_halves_capacitance_doubles_esr(self):
        cap = Capacitor(10e-6, esr=0.02)
        half = cap.scaled(0.5)
        assert np.isclose(half.capacitance, 5e-6)
        assert np.isclose(half.esr, 0.04)

    def test_scaled_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            Capacitor(1e-6).scaled(0.0)


class TestCombinators:
    def test_series_sums(self):
        z = series(1 + 1j, 2 - 0.5j, 3)
        assert z == pytest.approx(6 + 0.5j)

    def test_parallel_of_equal_halves(self):
        z = parallel(4 + 0j, 4 + 0j)
        assert z == pytest.approx(2 + 0j)

    def test_parallel_dominated_by_smallest(self):
        z = parallel(1e-3 + 0j, 1e3 + 0j)
        assert abs(z) == pytest.approx(1e-3, rel=1e-5)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            series()
        with pytest.raises(ConfigurationError):
            parallel()

    @given(
        a=st.floats(min_value=1e-6, max_value=1e6),
        b=st.floats(min_value=1e-6, max_value=1e6),
    )
    def test_parallel_below_both_series_above_both(self, a, b):
        zp = parallel(complex(a), complex(b)).real
        zs = series(complex(a), complex(b)).real
        assert zp <= min(a, b) * (1 + 1e-9)
        assert zs >= max(a, b)

    @given(
        c=st.floats(min_value=1e-9, max_value=1e-3),
        f=st.floats(min_value=1e3, max_value=1e9),
    )
    def test_capacitor_inductor_duality(self, c, f):
        """|Z_C| * |Z_L| == L/C when L == 1/(w^2 C) ... sanity of algebra."""
        omega = 2 * np.pi * f
        cap = Capacitor(c)
        ind = Inductor(1.0 / (omega**2 * c))
        # At this frequency the reactances cancel exactly in series.
        z = series(cap.impedance(omega), ind.impedance(omega))
        assert abs(z.imag) < 1e-6 * abs(cap.impedance(omega).imag)
