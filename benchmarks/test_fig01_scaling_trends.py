"""Bench: Fig. 1 — projected voltage swings across technology nodes."""

from benchmarks.conftest import run_once
from repro.experiments import fig01_scaling_trends


def test_fig01_scaling_trends(benchmark, quick):
    result = run_once(benchmark, lambda: fig01_scaling_trends.run(quick=quick))
    swings = result.series["swings"]
    names = ["45nm", "32nm", "22nm", "16nm", "11nm"]
    values = [swings[n] for n in names]
    # Monotone growth with process scaling.
    assert all(a < b for a, b in zip(values, values[1:]))
    # Roughly doubles by 16 nm (paper's headline claim).
    assert 1.7 <= swings["16nm"] <= 2.4
    # 11 nm in the paper's ~2.5-3x band.
    assert 2.2 <= swings["11nm"] <= 3.3
    print("\n" + result.format_table())
