"""Bench: Tab. I — SPECrate typical-case analysis at optimal margins."""

from benchmarks.conftest import run_once
from repro.experiments import tab1_specrate_pass


def test_tab1_specrate_pass(benchmark, quick):
    result = run_once(benchmark, lambda: tab1_specrate_pass.run(quick=quick))
    costs = [row[0] for row in result.rows]
    margins = [row[1] for row in result.rows]
    improvements = [row[2] for row in result.rows]
    passing = [row[3] for row in result.rows]

    # Optimal margins relax monotonically with recovery cost
    # (paper: 5.3 % -> 8.6 %).
    assert all(a <= b + 1e-9 for a, b in zip(margins, margins[1:]))
    # Expected improvement shrinks monotonically (paper: 15.7 % -> 9.7 %).
    assert all(a >= b - 1e-9 for a, b in zip(improvements, improvements[1:]))
    # Fine-grained recovery is in the paper's improvement class.
    assert improvements[0] >= 10.0
    # Passing schedules collapse from nearly-all to a fraction as recovery
    # coarsens (paper: 28/29 down to 9/29).
    assert passing[0] >= 0.8 * max(passing)
    assert min(passing[2:5]) < passing[0]
    print("\n" + result.format_table())
