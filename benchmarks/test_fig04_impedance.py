"""Bench: Fig. 4 — impedance profile reconstruction and decap contrast."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig04_impedance


def test_fig04_impedance(benchmark, quick):
    result = run_once(benchmark, lambda: fig04_impedance.run(quick=quick))
    # Stock resonance in the paper's 100-200 MHz first-droop band.
    assert 1.0e8 <= result.series["resonance_hz"] <= 2.0e8
    # Depleted package several times the stock impedance near 1 MHz
    # (paper quotes ~5x between 1 and 10 MHz).
    assert 3.0 <= result.series["ratio_1mhz"] <= 12.0
    # The software current-loop reconstruction agrees with the analytic
    # ladder within a factor comfortably below the decap contrast.
    reconstructed = result.series["loop_reconstructed_ohm"]
    analytic = result.series["loop_analytic_ohm"]
    valid = np.isfinite(reconstructed)
    ratio = reconstructed[valid] / analytic[valid]
    assert np.all((ratio > 0.5) & (ratio < 2.0))
    print("\n" + result.format_table())
