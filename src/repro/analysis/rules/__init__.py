"""Rule modules; importing this package registers every rule.

Families:

* :mod:`repro.analysis.rules.determinism` — ``DET0xx``: every stochastic
  or time-dependent value must flow from an injectable seed.
* :mod:`repro.analysis.rules.units` — ``UNI0xx``: physical quantities in
  SI base units built from :mod:`repro.units` constants, never raw
  scale-prefix literals.
* :mod:`repro.analysis.rules.hygiene` — ``HYG0xx``: simulation-code
  hygiene (float equality, mutable defaults, overbroad excepts, frozen
  config dataclasses, ``__future__`` annotations).
"""

from __future__ import annotations

from repro.analysis.rules import determinism, hygiene, units

__all__ = ["determinism", "hygiene", "units"]
