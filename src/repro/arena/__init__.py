"""The policy arena: N-core scheduling policies benchmarked head-to-head.

Layered on the generalized N-core oracle/scheduler in
:mod:`repro.core.scheduler`:

* :mod:`repro.arena.schedule` — partition schedules and the
  permutation-complete-cover contract;
* :mod:`repro.arena.policies` — the ``propose(programs, n_cores,
  oracle, seed)`` interface, the five ported pair policies, and the new
  RandomN / IPC-packing / DVFS-margin axes;
* :mod:`repro.arena.registry` — stable-key policy registry;
* :mod:`repro.arena.oracle` — exhaustive-search baseline for regret;
* :mod:`repro.arena.suites` — named workload suites;
* :mod:`repro.arena.harness` — the head-to-head runner and scorecards;
* :mod:`repro.arena.report` — deterministic JSON/markdown comparisons.

See ``docs/arena.md`` for the interface contract and scorecard schema.
"""

from repro.arena.harness import (
    DEFAULT_CONFIG,
    DEFAULT_CYCLES,
    DEFAULT_RECOVERY_COST,
    ArenaResult,
    PolicyScorecard,
    run_arena,
    score_schedule,
)
from repro.arena.oracle import (
    DEFAULT_SEARCH_LIMIT,
    OracleBaseline,
    exhaustive_baseline,
    iter_partitions,
)
from repro.arena.policies import (
    ArenaPolicy,
    DroopArenaPolicy,
    DVFSMarginPolicy,
    GreedyGroupPolicy,
    HybridArenaPolicy,
    IPCArenaPolicy,
    IPCPackingPolicy,
    RandomArenaPolicy,
    RandomNPolicy,
    StallArenaPolicy,
)
from repro.arena.registry import build_policies, registered_keys
from repro.arena.report import json_payload, json_report, markdown_report
from repro.arena.schedule import (
    Schedule,
    group_sizes,
    validate_cover,
)
from repro.arena.suites import SUITES, suite_names, suite_programs

__all__ = [
    "ArenaPolicy",
    "ArenaResult",
    "DEFAULT_CONFIG",
    "DEFAULT_CYCLES",
    "DEFAULT_RECOVERY_COST",
    "DEFAULT_SEARCH_LIMIT",
    "DroopArenaPolicy",
    "DVFSMarginPolicy",
    "GreedyGroupPolicy",
    "HybridArenaPolicy",
    "IPCArenaPolicy",
    "IPCPackingPolicy",
    "OracleBaseline",
    "PolicyScorecard",
    "RandomArenaPolicy",
    "RandomNPolicy",
    "SUITES",
    "Schedule",
    "StallArenaPolicy",
    "build_policies",
    "exhaustive_baseline",
    "group_sizes",
    "iter_partitions",
    "json_payload",
    "json_report",
    "markdown_report",
    "registered_keys",
    "run_arena",
    "score_schedule",
    "suite_names",
    "suite_programs",
    "validate_cover",
]
