"""Stall ratio ↔ droop correlation (the Fig. 15 analysis).

The stall ratio — the fraction of cycles the pipeline is waiting — is
computable from commodity performance counters at essentially no cost,
which is what makes a *software* noise mitigation loop feasible: Fig. 15
shows a 0.97 linear correlation between the coarse-grained counter and
the fine-grained droop measurements across CPU2006.  This module runs that
experiment against the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError
from repro.measurement.campaign import MeasurementCampaign


@dataclass(frozen=True)
class StallCorrelationResult:
    """Per-benchmark stall ratios and droop rates plus their correlation."""

    names: Tuple[str, ...]
    stall_ratios: np.ndarray
    droops_per_1k: np.ndarray

    @property
    def pearson_r(self) -> float:
        """Linear correlation coefficient (the paper reports 0.97)."""
        if self.names and len(self.names) >= 2:
            return float(
                np.corrcoef(self.stall_ratios, self.droops_per_1k)[0, 1]
            )
        raise MeasurementError("need at least two benchmarks")

    @property
    def spearman_rho(self) -> float:
        """Rank correlation (robust to the relation's exact shape)."""
        from scipy import stats

        return float(
            stats.spearmanr(self.stall_ratios, self.droops_per_1k).statistic
        )

    def rows(self) -> List[Tuple[str, float, float]]:
        """(name, stall ratio, droops/1k) rows in input order."""
        return [
            (name, float(s), float(d))
            for name, s, d in zip(
                self.names, self.stall_ratios, self.droops_per_1k
            )
        ]


def stall_droop_correlation(
    campaign: MeasurementCampaign,
    names: Optional[Sequence[str]] = None,
) -> StallCorrelationResult:
    """Measure each benchmark's stall ratio and droop rate (Fig. 15).

    Each benchmark runs single-threaded (the paper's setup for this
    figure) on the campaign's chip configuration; the busy core's counters
    provide the stall ratio and the chip trace the droops-per-1K-cycles.
    """
    runs = campaign.single_threaded_runs(names)
    benchmark_names = tuple(run.spec.workloads[0] for run in runs)
    stall_ratios = np.array([run.counters[0].stall_ratio for run in runs])
    droops = np.array([run.droop_samples_per_1k for run in runs])
    return StallCorrelationResult(
        names=benchmark_names,
        stall_ratios=stall_ratios,
        droops_per_1k=droops,
    )
