"""Measurement infrastructure: the software oscilloscope.

The paper senses on-die voltage through the package's ``VCCsense`` /
``VSSsense`` pins with a differential probe and an Infiniium oscilloscope
that stores *compressed histograms* of voltage samples — that compression
is what lets it record minutes of full-program execution (hundreds of
billions of cycles) instead of simulation-scale snippets.

This package is that tooling for simulated traces:

* :mod:`repro.measurement.probe` — probe noise / scope front-end.
* :mod:`repro.measurement.histogram` — the compressed sample histograms.
* :mod:`repro.measurement.droops` — droop/overshoot excursion detection
  (counts, depths, durations) and the droops-per-1K-cycles metric.
* :mod:`repro.measurement.tail` — parametric droop-depth tail model used
  to extrapolate emergency rates at margins deeper than a finite window
  can resolve empirically.
* :mod:`repro.measurement.campaign` — batch measurement over workload
  suites (the paper's 881 runs), with caching.
"""

from repro.measurement.histogram import CompressedHistogram
from repro.measurement.droops import (
    DroopStatistics,
    detect_droops,
    detect_overshoots,
    droop_samples_per_1k,
)
from repro.measurement.probe import DifferentialProbe, Oscilloscope
from repro.measurement.tail import DroopTailModel
from repro.measurement.campaign import (
    MeasurementCampaign,
    RunMeasurement,
    RunSpec,
)

__all__ = [
    "CompressedHistogram",
    "DroopStatistics",
    "detect_droops",
    "detect_overshoots",
    "droop_samples_per_1k",
    "DifferentialProbe",
    "Oscilloscope",
    "DroopTailModel",
    "MeasurementCampaign",
    "RunMeasurement",
    "RunSpec",
]
