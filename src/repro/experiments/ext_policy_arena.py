"""Extension — the policy arena: N-core schedulers head-to-head.

ROADMAP item 3: the paper's droop-aware pair policy is one point in a
policy space.  This harness runs the whole arena registry (the five
ported pair policies plus RandomN, IPC-packing and DVFS-margin) over a
named suite on dual- and quad-core shared-rail chips, reporting each
policy's droop overhead, throughput, energy proxy and regret against
the exhaustive oracle optimum.

Expected shape (the Fig. 18 story, now with regret made explicit): the
droop policy sits at or near zero regret, pure IPC and the random
controls pay measurably more droop overhead, and the gap is what
software-guided placement is worth on that suite.
"""

from __future__ import annotations

from repro.arena.harness import DEFAULT_CONFIG, run_arena
from repro.experiments.common import ExperimentResult

#: Core counts compared per suite.
CORE_COUNTS = (2, 4)


def run(quick: bool = False, config: str = DEFAULT_CONFIG) -> ExperimentResult:
    suite = "micro" if quick else "noise"
    result = ExperimentResult(
        experiment_id="Ext. E",
        title=f"Policy arena on suite '{suite}' ({config})",
        columns=("cores", "policy", "droops/1k", "overhead",
                 "mean IPC", "energy proxy", "regret"),
    )
    for n_cores in CORE_COUNTS:
        arena = run_arena(suite=suite, n_cores=n_cores, config=config)
        result.series[f"cores{n_cores}"] = arena
        for card in arena.scorecards:
            result.add_row(
                n_cores,
                card.name,
                card.droops_per_1k,
                card.recovery_overhead,
                card.mean_ipc,
                card.energy_proxy,
                "n/a" if card.oracle_regret is None else card.oracle_regret,
            )
        droop = arena.scorecard("droop")
        others = [c for c in arena.scorecards if c.policy != "droop"]
        beaten = sum(
            1 for c in others if droop.droops_per_1k <= c.droops_per_1k
        )
        result.notes.append(
            f"{n_cores} cores: droop policy at or below "
            f"{beaten}/{len(others)} competitors on droop overhead "
            f"(regret {droop.oracle_regret if droop.oracle_regret is not None else 'n/a'})"
        )
    return result
