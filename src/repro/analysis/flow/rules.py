"""Rule metadata for the dataflow families (``DIM``, ``CON``, ``TNT``, ``PERF``).

These rules do not hook the single-file visitor: they are *emitted* by
the flow passes (:mod:`repro.analysis.flow.inference`,
:mod:`repro.analysis.flow.concurrency`,
:mod:`repro.analysis.flow.taint`, and
:mod:`repro.analysis.flow.cost`).  Registering them in the shared
registry keeps ``--list-rules``, ``--select``, severity handling, and the
docs generator uniform across line rules and flow rules; the
:attr:`~repro.analysis.registry.Rule.flow` marker tells the CLI they only
fire under ``--flow``.
"""

from __future__ import annotations

from repro.analysis.findings import Severity
from repro.analysis.registry import Rule, register


class FlowRule(Rule):
    """Base for rules produced by the dataflow engine (no AST hooks)."""

    flow = True


@register
class DimensionMismatchRule(FlowRule):
    """DIM001: arithmetic or comparison across incompatible dimensions."""

    code = "DIM001"
    name = "dimension-mismatch"
    severity = Severity.ERROR
    description = (
        "adding, subtracting, or comparing values of different physical "
        "dimensions (volts + amps, ohms < seconds) is always a bug; the "
        "dataflow engine infers each operand's dimension interprocedurally"
    )


@register
class WrongArgumentDimensionRule(FlowRule):
    """DIM002: argument dimension contradicts the parameter's dimension."""

    code = "DIM002"
    name = "wrong-argument-dimension"
    severity = Severity.ERROR
    description = (
        "a value whose inferred dimension contradicts the unit-suffixed "
        "or dim-annotated parameter it is passed to (an inductance passed "
        "as c_farads)"
    )


@register
class DimensionlessBindingRule(FlowRule):
    """DIM003: computed dimension contradicts the unit-suffixed target."""

    code = "DIM003"
    name = "dimensionless-binding"
    severity = Severity.WARNING
    description = (
        "a computed value bound to a unit-suffixed name whose dimension "
        "it contradicts — canonically a dimensionless ratio stored as "
        "*_volts (a lost multiplication by the nominal supply)"
    )


@register
class WrongReturnDimensionRule(FlowRule):
    """DIM004: returned dimension contradicts the function's name/annotation."""

    code = "DIM004"
    name = "wrong-return-dimension"
    severity = Severity.ERROR
    description = (
        "a function whose name or dim annotation pins a return dimension "
        "(*_hertz, `-> ohm`) returns a value of a different inferred "
        "dimension"
    )


@register
class UnderivedWorkerRngRule(FlowRule):
    """CON001: worker-path RNG not derived from the run's seed."""

    code = "CON001"
    name = "underived-worker-rng"
    severity = Severity.ERROR
    description = (
        "code reachable from a process-pool payload constructs a random "
        "stream (default_rng/as_generator/derive_generator) from fresh "
        "entropy or a constant instead of seed material threaded through "
        "its parameters — parallel runs would not be bit-identical to "
        "serial"
    )


@register
class UnpicklablePayloadRule(FlowRule):
    """CON002: unpicklable callable shipped to a process pool."""

    code = "CON002"
    name = "unpicklable-payload"
    severity = Severity.ERROR
    description = (
        "a lambda or closure-captured local function passed to "
        "ProcessPoolExecutor.map/submit; pool payloads are pickled by "
        "name and must be module-level functions"
    )


@register
class WorkerGlobalWriteRule(FlowRule):
    """CON003: module-global state written from worker-reachable code."""

    code = "CON003"
    name = "worker-global-write"
    severity = Severity.WARNING
    description = (
        "a module-level global rebound or mutated from code reachable "
        "inside a pool worker; worker processes never share the write "
        "back, so the mutation silently diverges from serial execution"
    )


@register
class ClockReachesResultRule(FlowRule):
    """TNT001: clock value reaches a run result or cache content key."""

    code = "TNT001"
    name = "clock-reaches-result"
    severity = Severity.ERROR
    description = (
        "a wall-clock or monotonic reading flows into a worker entry's "
        "return value or into the sha256 cache key; results and keys "
        "must be pure functions of (seed, spec, config) or cache hits "
        "replay stale timestamps"
    )


@register
class UnderivedRngReachesResultRule(FlowRule):
    """TNT002: RNG not derived via derive_generator reaches a result."""

    code = "TNT002"
    name = "underived-rng-reaches-result"
    severity = Severity.ERROR
    description = (
        "a random stream constructed from fresh entropy or a constant "
        "(rather than via random_utils.derive_generator or parameter "
        "seed material) flows into a run result; parallel campaigns "
        "would not be bit-identical to serial ones"
    )


@register
class UnorderedReductionRule(FlowRule):
    """TNT003: unordered set iteration feeds an order-sensitive reduction."""

    code = "TNT003"
    name = "unordered-set-reduction"
    severity = Severity.WARNING
    description = (
        "worker-reachable code iterates a set (whose order is "
        "unspecified) into sum/list/join or an accumulating loop; "
        "float accumulation order varies run-to-run — sort first"
    )


@register
class CompletionOrderAggregationRule(FlowRule):
    """TNT004: results aggregated in worker-completion order."""

    code = "TNT004"
    name = "completion-order-aggregation"
    severity = Severity.ERROR
    description = (
        "results collected via as_completed/imap_unordered into an "
        "order-sensitive accumulator; aggregation must follow spec "
        "order so campaigns are bit-identical across --jobs N"
    )


@register
class EnvReachesCacheKeyRule(FlowRule):
    """TNT005: environment/platform value flows into the cache key."""

    code = "TNT005"
    name = "env-reaches-cache-key"
    severity = Severity.ERROR
    description = (
        "os.environ/platform-dependent material flows into the sha256 "
        "cache key; identical runs on different hosts would miss each "
        "other's cache entries (or worse, a host detail leaks into "
        "result identity)"
    )


@register
class PerCycleLoopRule(FlowRule):
    """PERF001: Python-level loop over a per-cycle iterable in hot code."""

    code = "PERF001"
    name = "per-cycle-python-loop"
    severity = Severity.WARNING
    description = (
        "a Python-level for loop over a trace-length iterable (events, "
        "cycles, samples) inside the hot closure (run.simulate / "
        "pdn.simulate / chip.run); the interpreter runs once per "
        "simulated cycle — vectorize the whole trace with numpy"
    )


@register
class StackableAppendRule(FlowRule):
    """PERF002: scalar append-accumulation that is numpy-stackable."""

    code = "PERF002"
    name = "stackable-append-accumulation"
    severity = Severity.WARNING
    description = (
        "a hot-closure loop appends computed rows onto a Python list "
        "one iteration at a time; the batch is numpy-stackable — build "
        "it with one vectorized expression or np.stack the results"
    )


@register
class UnbatchedFilterRule(FlowRule):
    """PERF003: repeated unbatched sosfilt/filter calls inside a loop."""

    code = "PERF003"
    name = "unbatched-filter-in-loop"
    severity = Severity.WARNING
    description = (
        "a loop in the hot closure invokes scipy.signal.sosfilt/lfilter "
        "(directly or through a callee, per the interprocedural cost "
        "model) once per iteration; stack the traces and filter the "
        "batch in a single call"
    )


@register
class HotLoopAllocationRule(FlowRule):
    """PERF004: allocation inside a per-cycle hot loop."""

    code = "PERF004"
    name = "hot-loop-allocation"
    severity = Severity.WARNING
    description = (
        "a list/dict/set literal, copy.deepcopy, or numpy array "
        "construction/copy executed inside a per-cycle loop in the hot "
        "closure; allocate once outside the loop and reuse the buffer"
    )


@register
class QuadraticMembershipRule(FlowRule):
    """PERF005: O(n²) membership test on a list in a loop."""

    code = "PERF005"
    name = "quadratic-list-membership"
    severity = Severity.WARNING
    description = (
        "`x in some_list` inside a hot-closure loop scans the list on "
        "every iteration — O(n²) overall; use a set for membership "
        "tests"
    )
