"""Command-line interface for simlint.

Usage::

    python -m repro.analysis src/repro
    python -m repro.analysis src/repro --flow
    python -m repro.analysis src/repro --flow --select TNT
    python -m repro.analysis tests examples --profile tests --exclude '*/fixtures/*'
    python -m repro.analysis src/repro --format sarif > simlint.sarif
    python -m repro.analysis src/repro --write-baseline
    python -m repro.analysis effects src/repro --json
    python -m repro.analysis hotspots src/repro --profile stages.json
    repro-lint --list-rules

``effects`` is a subcommand: it dumps the interprocedural effect-summary
table (see :mod:`repro.analysis.flow.effects`) instead of linting.
``hotspots`` is another: it ranks PERF findings by the measured share of
their stage in a ``--profile-stages`` JSON export (see
:mod:`repro.analysis.hotspots`).

Exit status: ``0`` when no unsuppressed, unbaselined findings remain (or
only warnings remain without ``--strict-warnings``); ``1`` when errors
were reported; ``2`` when only warnings were reported under
``--strict-warnings``; ``2`` also on usage errors (argparse convention).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis.engine import iter_python_files, lint_paths
from repro.analysis.findings import Severity
from repro.analysis.flow.cache import LintCache
from repro.analysis.flow.engine import flow_paths
from repro.analysis.registry import all_rules, family_of
from repro.analysis.reporters import render

#: Rule codes disabled per profile.  The ``tests`` profile accepts the
#: realities of test code: fixtures rarely carry the ``__future__``
#: import boilerplate (HYG005) and tests legitimately convert units
#: inline to state expected magnitudes (UNI002).
PROFILES: Dict[str, FrozenSet[str]] = {
    "default": frozenset(),
    "tests": frozenset({"HYG005", "UNI002"}),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "simlint: AST + dataflow invariant checker for determinism, "
            "unit-safety, simulation hygiene, dimensional analysis, and "
            "concurrency safety"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--flow",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "also run the project-wide dataflow engine (DIM/CON/TNT "
            "rules: interprocedural dimensional analysis, concurrency "
            "safety, and determinism-taint tracking)"
        ),
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="default",
        help=(
            "rule profile; 'tests' relaxes conventions that do not apply "
            "to test code (disables HYG005, UNI002)"
        ),
    )
    parser.add_argument(
        "--exclude",
        metavar="GLOB",
        action="append",
        default=[],
        help=(
            "fnmatch pattern (against the full path) to skip; repeatable "
            "(e.g. --exclude '*/fixtures/*')"
        ),
    )
    parser.add_argument(
        "--strict-warnings",
        action="store_true",
        help="exit 2 when only warnings were found (default: exit 0)",
    )
    parser.add_argument(
        "--lint-cache",
        metavar="FILE",
        default=None,
        help=(
            "per-file result cache keyed on content hashes; warm runs "
            "skip re-analysis of unchanged files"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: ./{baseline_mod.DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write current findings to the baseline file and exit 0 "
            "(creates ./simlint-baseline.json unless --baseline is given)"
        ),
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "drop baseline entries no longer matched by any current "
            "finding, rewrite the file, report removals, and exit; runs "
            "the full rule set (including flow) regardless of --select "
            "so entries from unselected families are not misread as "
            "stale"
        ),
    )
    parser.add_argument(
        "--require-justification",
        action="store_true",
        help=(
            "fail (exit 1) when any baseline entry in use lacks a "
            "non-empty 'justification' string"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help=(
            "comma-separated rule codes or family prefixes to run "
            "(e.g. DET003 or TNT; default: all; selecting a "
            "DIM/CON/TNT code implies --flow)"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        marker = " (flow)" if rule.flow else ""
        lines.append(
            f"{rule.code}  {rule.name:<28} [{rule.severity}]{marker} "
            f"{rule.description}"
        )
    return "\n".join(lines)


def _build_effects_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint effects",
        description=(
            "dump the interprocedural effect-summary table: one "
            "join-semilattice summary (reads-clock, rng-unseeded, "
            "rng-derived, reads-env, io, global-write, "
            "unordered-iteration) per function, plus the "
            "worker-reachable closure of every pool dispatch"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the table as JSON (default: a text listing)",
    )
    parser.add_argument(
        "--closure",
        metavar="FUNCTION",
        action="append",
        default=[],
        help=(
            "also report the reachable closure and joined effects of "
            "FUNCTION (qualname, Class.method, or unique bare name); "
            "repeatable"
        ),
    )
    parser.add_argument(
        "--exclude",
        metavar="GLOB",
        action="append",
        default=[],
        help="fnmatch pattern (against the full path) to skip; repeatable",
    )
    return parser


def _effects_main(argv: Sequence[str]) -> int:
    from repro.analysis.flow.effects import (
        compute_effects,
        effects_report,
    )
    from repro.analysis.flow.symbols import Project

    parser = _build_effects_parser()
    args = parser.parse_args(argv)
    paths = list(args.paths) or ["src/repro"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    sources: Dict[str, str] = {}
    for filename in iter_python_files(paths, exclude=args.exclude):
        with open(filename, "r", encoding="utf-8") as handle:
            sources[filename] = handle.read()
    table = compute_effects(Project.build(sources))
    try:
        report = effects_report(table, closures=tuple(args.closure))
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    lines: List[str] = []
    for qualname, effects in report["functions"].items():
        spelled = ", ".join(effects) if effects else "pure"
        lines.append(f"{qualname}: {spelled}")
    closure = report["worker_closure"]
    lines.append(
        f"worker closure: {len(closure['functions'])} function(s); "
        f"effects: {', '.join(closure['effects']) or 'pure'}"
    )
    for name, info in report.get("closures", {}).items():
        lines.append(
            f"closure({name}): {len(info['functions'])} function(s); "
            f"effects: {', '.join(info['effects']) or 'pure'}"
        )
    print("\n".join(lines))
    return 0


def _build_hotspots_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint hotspots",
        description=(
            "rank PERF performance findings by the measured share of the "
            "observability stage their hot entry point runs under; the "
            "output contains only rerun-stable data (share buckets and "
            "span counts, never wall seconds) and is byte-identical "
            "across reruns and --jobs settings"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--profile",
        metavar="FILE",
        default=None,
        help=(
            "stage-profile JSON written by `repro ... --profile-stages "
            "FILE`; without it every group ranks as unmeasured"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON (default: a text listing)",
    )
    parser.add_argument(
        "--exclude",
        metavar="GLOB",
        action="append",
        default=[],
        help="fnmatch pattern (against the full path) to skip; repeatable",
    )
    return parser


def _hotspots_main(argv: Sequence[str]) -> int:
    from repro.analysis.hotspots import (
        format_hotspots,
        hotspots_from_paths,
    )

    parser = _build_hotspots_parser()
    args = parser.parse_args(argv)
    paths = list(args.paths) or ["src/repro"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    sources: Dict[str, str] = {}
    for filename in iter_python_files(paths, exclude=args.exclude):
        with open(filename, "r", encoding="utf-8") as handle:
            sources[filename] = handle.read()
    try:
        report = hotspots_from_paths(sources, args.profile)
    except (OSError, ValueError) as exc:
        parser.error(str(exc))

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_hotspots(report))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "effects":
        return _effects_main(arguments[1:])
    if arguments and arguments[0] == "hotspots":
        return _hotspots_main(arguments[1:])
    parser = _build_parser()
    args = parser.parse_args(arguments)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = all_rules()
    if args.select:
        tokens = {t.strip() for t in args.select.split(",") if t.strip()}
        codes = {rule.code for rule in rules}
        families = {family_of(code) for code in codes}
        wanted = set()
        unknown = []
        for token in tokens:
            if token in codes:
                wanted.add(token)
            elif token in families:
                wanted |= {c for c in codes if c.startswith(token)}
            else:
                unknown.append(token)
        if unknown:
            parser.error(
                f"unknown rule code(s): {', '.join(sorted(unknown))}"
            )
        rules = [rule for rule in rules if rule.code in wanted]
    disabled = PROFILES[args.profile]
    rules = [rule for rule in rules if rule.code not in disabled]
    if args.prune_baseline:
        # Pruning compares the baseline against the complete current
        # finding set; a narrowed selection would misread entries from
        # unselected families as stale and silently drop them.
        rules = all_rules()

    line_rules = [rule for rule in rules if not rule.flow]
    flow_rule_set = [rule for rule in rules if rule.flow]
    run_flow = (
        args.prune_baseline
        or args.flow
        or (args.select is not None and bool(flow_rule_set))
    )

    paths = list(args.paths) or ["src/repro"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")

    cache = LintCache(args.lint_cache) if args.lint_cache else None
    findings = lint_paths(
        paths, rules=line_rules, cache=cache, exclude=args.exclude
    )
    if run_flow:
        findings.extend(
            flow_paths(
                paths,
                rules=flow_rule_set,
                cache=cache,
                exclude=args.exclude,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    if cache is not None:
        cache.save()
        print(
            f"(lint-cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"via {args.lint_cache})",
            file=sys.stderr,
        )

    if args.prune_baseline:
        target = args.baseline or baseline_mod.DEFAULT_BASELINE
        if not os.path.isfile(target):
            parser.error(f"no baseline file to prune at {target}")
        try:
            base = baseline_mod.load(target)
        except (OSError, ValueError) as exc:
            parser.error(str(exc))
        kept, removed = base.prune(findings)
        baseline_mod.save_items(target, kept)
        print(
            f"pruned {len(removed)} stale entry(ies) from {target} "
            f"({len(kept)} kept)"
        )
        for item in removed:
            print(
                f"  {item['path']}:{item['line']} {item['code']} "
                f"{item['message']}"
            )
        return 0

    if args.write_baseline:
        target = args.baseline or baseline_mod.DEFAULT_BASELINE
        baseline_mod.save(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    if args.no_baseline:
        surviving = findings
        source = None
    else:
        try:
            base, source = baseline_mod.discover(args.baseline)
        except (OSError, ValueError) as exc:
            parser.error(str(exc))
        surviving = base.filter(findings)

    print(render(surviving, args.format))
    if source is not None and len(surviving) != len(findings):
        skipped = len(findings) - len(surviving)
        print(
            f"(+{skipped} baselined finding(s) suppressed via {source})",
            file=sys.stderr,
        )
    if args.require_justification and source is not None:
        missing = base.unjustified()
        if missing:
            for item in missing:
                print(
                    f"{item['path']}:{item['line']}: {item['code']} "
                    "baselined without a justification",
                    file=sys.stderr,
                )
            print(
                f"({len(missing)} baseline entry(ies) in {source} lack a "
                "justification string)",
                file=sys.stderr,
            )
            return 1
    if any(f.severity is Severity.ERROR for f in surviving):
        return 1
    if surviving and args.strict_warnings:
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
