"""Unit tests for the campaign execution engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.measurement.cache import ResultCache
from repro.measurement.campaign import MeasurementCampaign
from repro.measurement.executor import (
    default_jobs,
    global_stats,
    reset_global_stats,
)

SUBSET = ("mcf", "namd", "lbm")


def _campaign(tmp_path=None, **kwargs):
    cache = ResultCache(tmp_path / "cache") if tmp_path is not None else None
    kwargs.setdefault("jobs", 1)
    return MeasurementCampaign(
        "Proc100", n_cycles=2000, seed=3, cache=cache, **kwargs
    )


class TestResolutionOrder:
    def test_memo_hit_returns_same_object(self, tmp_path):
        campaign = _campaign(tmp_path)
        first = campaign.measure("mcf")
        assert campaign.measure("mcf") is first
        assert campaign.executor.stats.memory_hits == 1

    def test_miss_simulates_and_stores(self, tmp_path):
        campaign = _campaign(tmp_path)
        campaign.measure("mcf")
        stats = campaign.executor.stats
        assert stats.simulated == 1
        assert stats.cache.misses == 1
        assert stats.cache.stores == 1
        assert campaign.executor.cache.entry_count() == 1

    def test_cache_hit_skips_simulation(self, tmp_path):
        _campaign(tmp_path).measure("mcf")
        warm = _campaign(tmp_path)
        warm.measure("mcf")
        stats = warm.executor.stats
        assert stats.simulated == 0
        assert stats.cache.hits == 1

    def test_duplicate_specs_measured_once(self, tmp_path):
        campaign = _campaign(tmp_path)
        spec = campaign.run_spec("mcf", "namd")
        results = campaign.measure_specs([spec, spec, spec])
        assert results[0] is results[1] is results[2]
        assert campaign.executor.stats.simulated == 1

    def test_batch_preserves_input_order(self, tmp_path):
        campaign = _campaign(tmp_path)
        runs = campaign.multiprogram_runs(SUBSET)
        expected = [(a, b) for a in SUBSET for b in SUBSET]
        assert [r.spec.workloads for r in runs] == expected


class TestGeneratorSeedDegradation:
    """Stateful Generator seeds have no stable identity: the executor
    must fall back to serial, uncached simulation for them."""

    def test_cache_disabled_for_generator_seed(self, tmp_path):
        rng = np.random.default_rng(3)
        campaign = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=rng,
            jobs=2, cache=ResultCache(tmp_path / "cache"),
        )
        assert campaign.executor.cache is None
        assert campaign.executor.key_for(campaign.run_spec("mcf")) is None
        campaign.single_threaded_runs(SUBSET)
        assert campaign.executor.stats.parallel_batches == 0
        assert campaign.executor.stats.simulated == 3

    def test_generator_seed_still_memoizes_in_process(self):
        campaign = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=np.random.default_rng(3), jobs=1
        )
        assert campaign.measure("mcf") is campaign.measure("mcf")


class TestJobs:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasurementCampaign("Proc100", n_cycles=2000, seed=0, jobs=0)

    def test_parallel_batch_counted(self, tmp_path):
        campaign = _campaign(tmp_path, jobs=2)
        campaign.single_threaded_runs(SUBSET)
        stats = campaign.executor.stats
        assert stats.parallel_batches == 1
        assert stats.simulated == 3

    def test_single_miss_stays_in_process(self, tmp_path):
        campaign = _campaign(tmp_path, jobs=2)
        campaign.measure("mcf")
        assert campaign.executor.stats.parallel_batches == 0

    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "")
        assert default_jobs() == 1
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() == 1

    def test_default_jobs_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ConfigurationError):
            default_jobs()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ConfigurationError):
            default_jobs()


class TestGlobalStats:
    def test_batches_aggregate_into_global(self, tmp_path):
        reset_global_stats()
        campaign = _campaign(tmp_path)
        campaign.single_threaded_runs(SUBSET)
        campaign.single_threaded_runs(SUBSET)
        stats = global_stats()
        assert stats.simulated == 3
        assert stats.memory_hits == 3
        assert stats.cache.stores == 3
        assert stats.wall_seconds > 0

    def test_reset(self):
        reset_global_stats()
        assert global_stats().simulated == 0
        assert global_stats().cache.lookups == 0
