"""The workload → core interface: one sampled execution window.

Workload models (:mod:`repro.workloads`) cannot hand the simulator full
multi-minute runs cycle by cycle — a 60-second interval is 10^11 cycles.
Instead they hand the core model a *representative window*: a short
per-cycle baseline-activity series plus the stall events that occur inside
it, sampled from the workload's statistics at a given point of program
time.  Scaling window statistics back up to wall-clock intervals is the
measurement layer's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.events import EventTrace, StallEvent


@dataclass(frozen=True)
class ExecutionWindow:
    """A sampled slice of one program's execution on one core.

    Parameters
    ----------
    baseline_activity:
        Per-cycle activity level in [0, 1] *before* stall-event envelopes
        are applied.  Slow modulation of this series (memory phases,
        bursts) is what excites the package-band resonance.
    events:
        ``(cycle, event)`` occurrences inside the window, sorted or not.
    base_ipc:
        Instructions retired per fully active cycle; effective IPC is
        ``base_ipc`` weighted by realized activity.
    label:
        The generating workload's name (for reports).
    """

    baseline_activity: np.ndarray
    events: Union[EventTrace, Sequence[Tuple[int, StallEvent]]] = field(
        default_factory=list
    )
    base_ipc: float = 1.5
    label: str = ""

    def __post_init__(self) -> None:
        activity = np.asarray(self.baseline_activity, dtype=float)
        if activity.ndim != 1 or activity.size == 0:
            raise ConfigurationError(
                "baseline_activity must be a non-empty 1-D array"
            )
        if np.any(activity < 0) or np.any(activity > 1):
            raise ConfigurationError("baseline_activity must lie in [0, 1]")
        object.__setattr__(self, "baseline_activity", activity)
        if self.base_ipc <= 0:
            raise ConfigurationError("base_ipc must be positive")
        trace = EventTrace.coerce(self.events)
        object.__setattr__(self, "events", trace)
        outside = (trace.cycles < 0) | (trace.cycles >= activity.size)
        if np.any(outside):
            cycle = int(trace.cycles[np.argmax(outside)])
            raise ConfigurationError(
                f"event at cycle {cycle} outside window of {activity.size}"
            )

    @property
    def n_cycles(self) -> int:
        return int(self.baseline_activity.size)

    def event_count(self, event: StallEvent) -> int:
        """Number of occurrences of one event kind in the window."""
        return EventTrace.coerce(self.events).count(event)
