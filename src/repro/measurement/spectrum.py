"""Spectral analysis of voltage and current traces.

The paper reasons about voltage noise in frequency bands: the VRM ripple
in the hundreds of kHz, program bursts and decap-sensitive resonances in
the package band (~0.3-5 MHz), and the first-droop resonance around
100-200 MHz.  This module provides the band decomposition used to verify
that the simulated workloads actually place their dI/dt energy where the
paper's physics says it must be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
from scipy import signal

from repro.errors import MeasurementError
from repro.pdn.simulate import VoltageTrace

#: The paper's frequency bands (Hz): ripple, package resonance region,
#: first-droop (die) resonance region.
BANDS: Dict[str, Tuple[float, float]] = {
    "vrm-ripple": (1e5, 6e5),
    "package": (6e5, 3e7),
    "first-droop": (6e7, 4e8),
}


@dataclass(frozen=True)
class PowerSpectrum:
    """A one-sided power spectral density estimate."""

    frequencies_hz: np.ndarray
    density: np.ndarray

    def band_power(self, f_lo: float, f_hi: float) -> float:
        """Integrated power within [f_lo, f_hi] (trapezoidal)."""
        if not 0 <= f_lo < f_hi:
            raise MeasurementError("need 0 <= f_lo < f_hi")
        mask = (self.frequencies_hz >= f_lo) & (self.frequencies_hz <= f_hi)
        if mask.sum() < 2:
            raise MeasurementError("band contains fewer than two bins")
        return float(
            np.trapezoid(self.density[mask], self.frequencies_hz[mask])
        )

    def band_powers(
        self, bands: Dict[str, Tuple[float, float]] = BANDS
    ) -> Dict[str, float]:
        """Integrated power per named band."""
        return {
            name: self.band_power(lo, hi) for name, (lo, hi) in bands.items()
        }

    def dominant_frequency_hz(
        self, f_lo: float = 0.0, f_hi: float = np.inf
    ) -> float:
        """Frequency of the largest PSD bin within a band."""
        mask = (self.frequencies_hz >= f_lo) & (self.frequencies_hz <= f_hi)
        if not mask.any():
            raise MeasurementError("band contains no bins")
        idx = int(np.argmax(np.where(mask, self.density, -np.inf)))
        return float(self.frequencies_hz[idx])


def power_spectrum(
    samples: np.ndarray,
    dt_seconds: float,
    detrend: str = "constant",
) -> PowerSpectrum:
    """Welch PSD estimate of an arbitrary sampled series."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 64:
        raise MeasurementError("need a 1-D series of at least 64 samples")
    if dt_seconds <= 0:
        raise MeasurementError("dt_seconds must be positive")
    nperseg = min(samples.size, 8192)
    frequencies, density = signal.welch(
        samples,
        fs=1.0 / dt_seconds,
        nperseg=nperseg,
        detrend=detrend,
    )
    return PowerSpectrum(frequencies_hz=frequencies, density=density)


def voltage_spectrum(trace: VoltageTrace) -> PowerSpectrum:
    """PSD of a voltage trace's deviations from nominal."""
    return power_spectrum(trace.deviations_fraction(), trace.dt_seconds)
