"""Per-rule fixture tests: exact rule code + line for every violation."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import flow_paths, lint_paths, lint_source
from repro.analysis.findings import Severity
from repro.analysis.registry import all_rules, family_of

from tests.analysis.conftest import FIXTURES, expected_findings


def lint_fixture(name: str):
    path = FIXTURES / name
    return lint_paths([str(path)])


def actual_findings(name: str) -> set[tuple[str, int]]:
    return {(f.code, f.line) for f in lint_fixture(name)}


class TestFixtureFindings:
    """Each fixture's ``# expect`` markers match simlint exactly."""

    @pytest.mark.parametrize(
        "fixture",
        [
            "det_violations.py",
            "unit_violations.py",
            "hyg_violations.py",
            "obs_timing.py",
        ],
    )
    def test_markers_match_exactly(self, fixture):
        expected = expected_findings(FIXTURES / fixture)
        assert expected, f"{fixture} declares no expectations"
        assert actual_findings(fixture) == expected

    def test_missing_future_annotations(self):
        findings = lint_fixture("hyg_missing_future.py")
        assert [(f.code, f.line) for f in findings] == [("HYG005", 1)]

    def test_clean_fixture_is_clean(self):
        assert lint_fixture("clean.py") == []

    def test_every_rule_family_has_fixture_coverage(self):
        """Each family (line and flow) is verified by at least one marker."""
        covered = set()
        for fixture in FIXTURES.rglob("*.py"):
            covered |= {code[:3] for code, _ in expected_findings(fixture)}
        assert {"DET", "UNI", "HYG", "OBS", "DIM", "CON"} <= covered

    def test_every_rule_code_has_fixture_coverage(self):
        """No rule ships without a fixture that triggers it.

        Line rules fire through ``lint_paths``; flow rules only through
        ``flow_paths`` — each engine covers its own registry half.
        """
        covered = set()
        for fixture in sorted(FIXTURES.glob("*.py")):
            covered |= {f.code for f in lint_fixture(fixture.name)}
        covered |= {f.code for f in flow_paths([str(FIXTURES / "flow")])}
        assert {rule.code for rule in all_rules()} <= covered


class TestRuleMetadata:
    def test_codes_unique_and_well_formed(self):
        rules = all_rules()
        codes = [rule.code for rule in rules]
        assert len(set(codes)) == len(codes)
        for rule in rules:
            family = family_of(rule.code)
            assert family in (
                "DET", "UNI", "HYG", "OBS", "DIM", "CON", "TNT", "PERF"
            )
            assert rule.code[len(family):].isdigit()
            assert rule.name
            assert rule.description
            assert isinstance(rule.severity, Severity)
            # Flow rules belong to the dataflow families and vice versa.
            assert rule.flow == (family in ("DIM", "CON", "TNT", "PERF"))

    def test_fixture_dir_fails_as_a_whole(self):
        findings = lint_paths([str(FIXTURES)])
        assert findings, "fixtures must make simlint fail"


class TestTargetedDetections:
    """Spot checks straight from source snippets (no fixture file)."""

    def test_numpy_alias_resolution(self):
        source = (
            "from __future__ import annotations\n"
            "import numpy.random as npr\n"
            "def f() -> None:\n"
            "    npr.seed(3)\n"
        )
        findings = lint_source(source, path="snippet.py")
        assert [(f.code, f.line) for f in findings] == [("DET002", 4)]

    def test_from_import_wall_clock(self):
        source = (
            "from __future__ import annotations\n"
            "from time import time\n"
            "def f() -> float:\n"
            "    return time()\n"
        )
        findings = lint_source(source, path="snippet.py")
        assert [(f.code, f.line) for f in findings] == [("DET003", 4)]

    def test_perf_counter_flagged_outside_observability(self):
        source = (
            "from __future__ import annotations\n"
            "import time\n"
            "def f() -> float:\n"
            "    return time.perf_counter()\n"
        )
        findings = lint_source(source, path="snippet.py")
        assert [(f.code, f.line) for f in findings] == [("OBS001", 4)]

    def test_perf_counter_allowed_inside_observability(self):
        source = (
            "from __future__ import annotations\n"
            "import time\n"
            "def f() -> float:\n"
            "    return time.perf_counter()\n"
        )
        path = "src/repro/observability/clock.py"
        assert lint_source(source, path=path) == []

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", path="broken.py")
        assert len(findings) == 1
        assert findings[0].code == "SIM000"
        assert findings[0].severity is Severity.ERROR

    def test_unit_rule_ignores_plain_magnitudes(self):
        source = (
            "from __future__ import annotations\n"
            "duration_seconds = 600.0\n"
            "ramp_seconds = 2000.0\n"
        )
        assert lint_source(source, path="snippet.py") == []

    def test_unit_rule_catches_small_decimal(self):
        source = (
            "from __future__ import annotations\n"
            "noise_volts = 0.0004\n"
        )
        findings = lint_source(source, path="snippet.py")
        assert [(f.code, f.line) for f in findings] == [("UNI001", 2)]
