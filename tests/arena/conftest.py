"""Shared arena test doubles.

The property suite exercises the policy interface thousands of times;
driving a real :class:`~repro.measurement.campaign.MeasurementCampaign`
per example would be prohibitive and adds nothing — the contracts under
test (cover completeness, seed determinism, symmetry) are about the
*policies*, not the simulator.  :class:`FakeOracle` stands in: a
deterministic, name-set-symmetric metric source with the same query
surface as :class:`repro.core.scheduler.GroupOracle`.
"""

import pytest


def _unit(tag, names):
    """Deterministic pseudo-metric in [0, 1) from a tag and a name set.

    FNV-1a over the sorted names, so the value is symmetric in the
    group's members (matching the harness contract that oracle queries
    are canonicalized) and stable across processes — no ``hash()``.
    """
    key = tag + ":" + "|".join(sorted(names))
    acc = 2166136261
    for byte in key.encode():
        acc = ((acc ^ byte) * 16777619) % (1 << 32)
    return acc / float(1 << 32)


class FakeOracle:
    """Cheap stand-in for ``GroupOracle`` with symmetric metrics."""

    def droop_metric(self, *names):
        return 10.0 * _unit("droop", names)

    def ipc_metric(self, *names):
        return 0.2 + 2.0 * _unit("ipc", names)

    def max_droop_metric(self, *names):
        # Always inside the 14 % worst-case guardband.
        return 0.13 * _unit("maxdroop", names)

    def stall_metric(self, name):
        return _unit("stall", (name,))

    def solo_ipc_metric(self, name):
        return 0.2 + 2.0 * _unit("solo", (name,))


@pytest.fixture
def fake_oracle():
    return FakeOracle()
