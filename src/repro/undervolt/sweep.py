"""The Vmin sweep: per-(workload, frequency, core-count) margin maps.

One characterized cell answers: *running this workload mix on this many
cores at this frequency, how low can the regulator set-point go?*  The
decomposition that makes a full map cheap:

* the **load-dependent** part — the worst droop, in volts, each workload
  mix produces — comes from one campaign measurement per (workload,
  core-count).  The PDN is linear and current-driven, so the droop in
  volts does not depend on the set-point; measuring it once at nominal
  covers every frequency row of the map.  Measurements go through
  :meth:`~repro.measurement.campaign.MeasurementCampaign.measure_specs`
  (one executor fan-out), so the vectorized batch path and the
  content-addressed cache make repeated cells free.
* the **frequency-dependent** part — the supply the critical path needs
  — is the closed-form :func:`repro.undervolt.model.critical_voltage`.

Vmin for a cell is their sum; the **frontier** for each (core-count,
frequency) operating point is the worst Vmin across workloads — the
set-point you could actually ship at, with its reclaimed guardband and
the squared-set-point energy saving.

:func:`probe_below_vmin` then drops a campaign *below* the frontier:
with a ``biterror`` fault plan at the requested depth, the executor sees
seeded SRAM-style bit corruption and must converge to the clean result
through its retry machinery (the PR-5 recovery contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro import observability as obs
from repro import units
from repro.errors import ConfigurationError
from repro.faults import FaultInjector
from repro.measurement.campaign import MeasurementCampaign
from repro.measurement.executor import RetryPolicy
from repro.measurement.record import diff_measurements
from repro.pdn import platform
from repro.undervolt import model

#: ``(config, n_cycles, seed, n_cores) -> campaign`` — how the sweep
#: obtains its campaigns.  The default is the shared experiment context;
#: tests pass a factory building hermetic (cache-free) campaigns.
CampaignFactory = Callable[[str, int, int, int], MeasurementCampaign]

#: Default frequency grid (GHz): the shipped clock and two reduced steps,
#: mirroring the frequency-scaling points of the V/F characterization
#: studies.  All at or below the anchor, where undervolting pays.
DEFAULT_FREQUENCIES_GHZ: Tuple[float, ...] = (1.46, 1.66, 1.86)


@dataclass(frozen=True)
class VminCell:
    """One characterized (workload, frequency, core-count) cell."""

    workload: str  # "mcf" or a "+"-joined multiprogram mix
    kind: str
    n_cores: int
    frequency_ghz: float
    critical_volt: float  # what the critical path needs at this clock
    droop_volt: float  # worst droop this mix produces (volts)
    vmin_volt: float  # critical + droop: the safe set-point floor
    guardband_fraction: float  # reclaimable margin vs nominal
    energy_savings_fraction: float  # 1 - (vmin/nominal)^2


@dataclass(frozen=True)
class FrontierPoint:
    """The shippable operating point for one (core-count, frequency).

    Its Vmin is the worst (highest) cell Vmin across workloads — the
    *limiting* workload decides the margin everyone gets.
    """

    n_cores: int
    frequency_ghz: float
    vmin_volt: float
    limiting_workload: str
    guardband_fraction: float
    energy_savings_fraction: float


@dataclass(frozen=True)
class VminMap:
    """A full sweep: every cell plus the derived frontier."""

    config: str
    n_cycles: int
    seed: int
    nominal_volt: float
    workloads: Tuple[str, ...]
    frequencies_ghz: Tuple[float, ...]
    core_counts: Tuple[int, ...]
    cells: Tuple[VminCell, ...]
    frontier: Tuple[FrontierPoint, ...]

    def cell(
        self, workload: str, frequency_ghz: float, n_cores: int
    ) -> VminCell:
        """The one cell matching the given coordinates (KeyError if none)."""
        for cell in self.cells:
            if (
                cell.workload == workload
                and cell.frequency_ghz == frequency_ghz
                and cell.n_cores == n_cores
            ):
                return cell
        raise KeyError(
            f"no cell for {workload!r} @ {frequency_ghz:g} GHz "
            f"on {n_cores} cores"
        )

    def worst_point(self) -> FrontierPoint:
        """The frontier point with the least margin (highest Vmin).

        Ties break on the full coordinate tuple so the choice is
        deterministic and input-order independent.
        """
        return max(
            self.frontier,
            key=lambda p: (
                p.vmin_volt, p.n_cores, p.frequency_ghz,
                p.limiting_workload,
            ),
        )


def _default_campaign_factory(
    config: str, n_cycles: int, seed: int, n_cores: int
) -> MeasurementCampaign:
    from repro.experiments import context

    return context.get_campaign(
        config, n_cycles=n_cycles, seed=seed, n_cores=n_cores
    )


def _canonical_workloads(workloads: Sequence[str]) -> Tuple[str, ...]:
    tokens = tuple(sorted({token.strip() for token in workloads}))
    if not tokens or any(not token for token in tokens):
        raise ConfigurationError("need at least one non-empty workload")
    return tokens


def run_sweep(
    workloads: Sequence[str],
    frequencies_ghz: Sequence[float] = DEFAULT_FREQUENCIES_GHZ,
    core_counts: Sequence[int] = (2,),
    config: str = "Proc100",
    n_cycles: int = 25_000,
    seed: int = 0,
    campaign_factory: Optional[CampaignFactory] = None,
) -> VminMap:
    """Characterize Vmin for every (workload, frequency, core-count) cell.

    Inputs are canonicalized (sorted, deduplicated) before any work, so
    two sweeps over the same sets in different orders produce
    bit-identical maps.  ``workloads`` are run-spec tokens: a plain name
    is a single/multithread run, ``"a+b"`` a multiprogram mix (needs a
    core count of at least the mix size).
    """
    workload_tokens = _canonical_workloads(workloads)
    frequency_grid_ghz = tuple(sorted({float(f) for f in frequencies_ghz}))
    cores_grid = tuple(sorted({int(n) for n in core_counts}))
    if not frequency_grid_ghz:
        raise ConfigurationError("need at least one frequency")
    if not cores_grid or cores_grid[0] < 1:
        raise ConfigurationError("core counts must be >= 1")
    factory = campaign_factory or _default_campaign_factory
    nominal_volt = platform.NOMINAL_VOLTAGE
    # The frequency-dependent part is workload-independent: one
    # inversion per grid point, shared by every cell in that column.
    critical_by_ghz = {
        ghz: model.critical_voltage(ghz) for ghz in frequency_grid_ghz
    }
    with obs.span(
        "undervolt.sweep",
        config=config,
        workloads=len(workload_tokens),
        frequencies=len(frequency_grid_ghz),
    ):
        obs.increment("repro_undervolt_sweeps_total")
        cells: List[VminCell] = []
        for n_cores in cores_grid:
            campaign = factory(config, n_cycles, seed, n_cores)
            specs = [
                campaign.run_spec(*token.split("+"))
                for token in workload_tokens
            ]
            measurements = campaign.measure_specs(specs)
            for token, spec, measurement in zip(
                workload_tokens, specs, measurements
            ):
                droop_volt = measurement.max_droop * nominal_volt
                for ghz in frequency_grid_ghz:
                    vmin_volt = critical_by_ghz[ghz] + droop_volt
                    cells.append(
                        VminCell(
                            workload=token,
                            kind=spec.kind,
                            n_cores=n_cores,
                            frequency_ghz=ghz,
                            critical_volt=critical_by_ghz[ghz],
                            droop_volt=droop_volt,
                            vmin_volt=vmin_volt,
                            guardband_fraction=(
                                (nominal_volt - vmin_volt) / nominal_volt
                            ),
                            energy_savings_fraction=(
                                model.energy_savings_fraction(
                                    vmin_volt, nominal_volt
                                )
                            ),
                        )
                    )
        obs.increment("repro_undervolt_cells_total", len(cells))
        frontier = _extract_frontier(cells, cores_grid, frequency_grid_ghz)
        for point in frontier:
            obs.set_gauge(
                "repro_undervolt_energy_savings_fraction",
                point.energy_savings_fraction,
                cores=point.n_cores,
                ghz=f"{point.frequency_ghz:g}",
            )
        return VminMap(
            config=config,
            n_cycles=int(n_cycles),
            seed=int(seed),
            nominal_volt=nominal_volt,
            workloads=workload_tokens,
            frequencies_ghz=frequency_grid_ghz,
            core_counts=cores_grid,
            cells=tuple(cells),
            frontier=frontier,
        )


def _extract_frontier(
    cells: Sequence[VminCell],
    cores_grid: Sequence[int],
    frequency_grid_ghz: Sequence[float],
) -> Tuple[FrontierPoint, ...]:
    """Safe-margin region: worst cell per (core-count, frequency)."""
    points: List[FrontierPoint] = []
    for n_cores in cores_grid:
        for ghz in frequency_grid_ghz:
            column = [
                cell
                for cell in cells
                if cell.n_cores == n_cores and cell.frequency_ghz == ghz
            ]
            # Ties on Vmin break alphabetically so the limiting workload
            # is stable under input reordering.
            limiting = max(
                column, key=lambda cell: (cell.vmin_volt, cell.workload)
            )
            points.append(
                FrontierPoint(
                    n_cores=n_cores,
                    frequency_ghz=ghz,
                    vmin_volt=limiting.vmin_volt,
                    limiting_workload=limiting.workload,
                    guardband_fraction=limiting.guardband_fraction,
                    energy_savings_fraction=limiting.energy_savings_fraction,
                )
            )
    return tuple(points)


# ---------------------------------------------------------------------------
# Below-Vmin probe
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProbeResult:
    """Outcome of running a campaign below the characterized frontier."""

    n_cores: int
    frequency_ghz: float
    vmin_volt: float
    depth_volt: float
    set_point_volt: float
    bit_error_rate: float  # effective per-decision probability
    injected_bit_errors: int
    retries: int
    converged: bool
    differences: Tuple[str, ...]

    def summary(self) -> str:
        state = (
            "recovered bit-identical" if self.converged
            else "DIVERGED: " + "; ".join(self.differences[:3])
        )
        return (
            f"probe at {self.set_point_volt:.3f} V "
            f"({self.depth_volt / units.MILLI_VOLT:g} mV below the "
            f"{self.vmin_volt:.3f} V frontier, per-decision bit error "
            f"rate {self.bit_error_rate:.3f}): "
            f"{self.injected_bit_errors} bit error(s) injected, "
            f"{self.retries} retries, {state}"
        )


def probe_below_vmin(
    vmin_map: VminMap,
    depth_volt: float,
    max_retries: int = 4,
) -> ProbeResult:
    """Re-run the map's workloads ``depth_volt`` below the worst frontier
    point, under voltage-dependent fault injection.

    Two hermetic (cache-free, serial) campaigns run the same specs: one
    clean, one with a ``biterror`` plan whose rate follows the
    bit-error-rate curve at ``depth_volt``.  Injected faults must be
    absorbed by the executor's retry path and the results must match the
    clean campaign bit-for-bit — the same convergence contract the chaos
    suite enforces, now driven by a physically-motivated fault source.
    """
    if depth_volt < 0:
        raise ConfigurationError("depth_volt must be >= 0")
    worst = vmin_map.worst_point()
    plan_spec = (
        f"biterror:1,undervolt-depth={depth_volt:g},seed={vmin_map.seed}"
    )
    with obs.span(
        "undervolt.probe", depth_mv=f"{depth_volt / units.MILLI_VOLT:g}"
    ):
        clean = MeasurementCampaign(
            vmin_map.config,
            n_cycles=vmin_map.n_cycles,
            seed=vmin_map.seed,
            jobs=1,
            n_cores=worst.n_cores,
        )
        injector = FaultInjector(plan_spec)
        faulted = MeasurementCampaign(
            vmin_map.config,
            n_cycles=vmin_map.n_cycles,
            seed=vmin_map.seed,
            jobs=1,
            retry=RetryPolicy(max_retries=max_retries, backoff_base=0.0),
            injector=injector,
            n_cores=worst.n_cores,
        )
        specs = [
            clean.run_spec(*token.split("+"))
            for token in vmin_map.workloads
        ]
        expected = clean.measure_specs(specs)
        observed = faulted.measure_specs(specs)
        differences: List[str] = []
        for spec, a, b in zip(specs, expected, observed):
            for line in diff_measurements(a, b):
                differences.append(f"{spec.label}: {line}")
    return ProbeResult(
        n_cores=worst.n_cores,
        frequency_ghz=worst.frequency_ghz,
        vmin_volt=worst.vmin_volt,
        depth_volt=depth_volt,
        set_point_volt=worst.vmin_volt - depth_volt,
        bit_error_rate=model.bit_error_rate_at_depth(depth_volt),
        injected_bit_errors=injector.injected.get("vmin.biterror", 0),
        retries=faulted.executor.stats.retries,
        converged=not differences,
        differences=tuple(differences),
    )
