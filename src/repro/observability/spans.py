"""Hierarchical tracing spans.

A span is one timed region of work with a name, optional metadata, and
child spans — ``campaign.batch`` contains one ``run.simulate`` per cache
miss, which contains ``chip.run``, which contains ``pdn.simulate``.  The
tree mirrors the call structure of the pipeline, so a trace answers
"where did the wall time go" without a sampling profiler.

Two invariants shape the implementation:

* **Determinism of structure.**  Span names, metadata, ordering and
  nesting are functions of the work performed, never of timing or
  process placement; only the recorded durations vary between runs.
  Worker-process spans are grafted into the parent trace in spec order
  (see :meth:`Tracer.graft`), so a ``--jobs 8`` campaign produces the
  same tree as a serial one.
* **A free disabled path.**  When tracing is off, :func:`~repro.observability.span`
  returns the shared :data:`NULL_SPAN` singleton — no span object is
  allocated, no clock is read (asserted by the zero-overhead test in
  ``tests/observability``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.observability.clock import monotonic_seconds

#: Nested ``(name, (child structures...))`` tuple — the timing-free shape
#: of a span tree, used by the determinism tests.
Structure = Tuple[str, Tuple["Structure", ...]]


class SpanRecord:
    """One completed (or in-flight) region of the trace tree."""

    __slots__ = ("name", "metadata", "duration_seconds", "children", "worker")

    def __init__(
        self,
        name: str,
        metadata: Optional[Mapping[str, Any]] = None,
        worker: bool = False,
    ) -> None:
        if not name:
            raise ConfigurationError("span name must be non-empty")
        self.name = name
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self.duration_seconds = 0.0
        self.children: List[SpanRecord] = []
        #: True for spans recorded inside a pool worker and merged back.
        self.worker = worker

    def structure(self) -> Structure:
        """The timing-free shape: nested ``(name, children)`` tuples."""
        return (self.name, tuple(c.structure() for c in self.children))

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready dict (durations rounded to the microsecond)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "duration_seconds": round(self.duration_seconds, 6),
        }
        if self.metadata:
            payload["metadata"] = {
                key: self.metadata[key] for key in sorted(self.metadata)
            }
        if self.worker:
            payload["worker"] = True
        if self.children:
            payload["children"] = [c.to_payload() for c in self.children]
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SpanRecord":
        """Rebuild a record tree from :meth:`to_payload` output."""
        record = cls(
            str(payload["name"]),
            payload.get("metadata"),
            worker=bool(payload.get("worker", False)),
        )
        record.duration_seconds = float(payload.get("duration_seconds", 0.0))
        record.children = [
            cls.from_payload(child) for child in payload.get("children", ())
        ]
        return record

    def walk(self) -> Iterator["SpanRecord"]:
        """This record and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"SpanRecord({self.name!r}, {self.duration_seconds:.6f}s, "
            f"{len(self.children)} children)"
        )


class NullSpan:
    """The do-nothing span handed out while tracing is disabled.

    A single shared instance (:data:`NULL_SPAN`) serves every call site:
    entering/exiting/annotating it is a few attribute lookups and no
    allocation, which is what keeps disabled-path overhead under the 2%
    budget on the fig07 benchmark.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **metadata: Any) -> None:
        """Ignore metadata (parity with :class:`ActiveSpan`)."""


NULL_SPAN = NullSpan()


class ActiveSpan:
    """Context manager that records one :class:`SpanRecord` on a tracer."""

    __slots__ = ("_tracer", "_record", "_started_seconds")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record
        self._started_seconds = 0.0

    def __enter__(self) -> "ActiveSpan":
        self._tracer._push(self._record)
        self._started_seconds = monotonic_seconds()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._record.duration_seconds = (
            monotonic_seconds() - self._started_seconds
        )
        self._tracer._pop(self._record)
        return False

    def annotate(self, **metadata: Any) -> None:
        """Attach metadata discovered mid-span (e.g. a result count)."""
        self._record.metadata.update(metadata)


class Tracer:
    """Collects one process's span tree.

    Single-threaded by design: the simulation pipeline is synchronous
    within a process, and each pool worker runs its own tracer whose
    spans are merged back explicitly (:meth:`graft`).
    """

    def __init__(self) -> None:
        self.roots: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []

    def span(
        self, name: str, metadata: Optional[Mapping[str, Any]] = None
    ) -> ActiveSpan:
        """A context manager recording ``name`` under the current span."""
        return ActiveSpan(self, SpanRecord(name, metadata))

    def _push(self, record: SpanRecord) -> None:
        self._attach(record)
        self._stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        if not self._stack or self._stack[-1] is not record:
            raise ConfigurationError(
                f"span {record.name!r} closed out of order"
            )
        self._stack.pop()

    def _attach(self, record: SpanRecord) -> None:
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)

    def graft(self, payloads: Iterable[Mapping[str, Any]]) -> None:
        """Attach exported worker spans under the current span, in order.

        The caller (the executor's parallel path) supplies payloads in
        spec order, so the merged tree is independent of which worker
        ran which spec — the structural-determinism contract.
        """
        for payload in payloads:
            record = SpanRecord.from_payload(payload)
            for span in record.walk():
                span.worker = True
            self._attach(record)

    @property
    def span_count(self) -> int:
        return sum(1 for root in self.roots for _ in root.walk())

    def walk(self) -> Iterator[SpanRecord]:
        for root in self.roots:
            yield from root.walk()

    def structure(self) -> Tuple[Structure, ...]:
        """Timing-free shape of the whole trace."""
        return tuple(root.structure() for root in self.roots)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready trace document."""
        return {
            "version": 1,
            "span_count": self.span_count,
            "roots": [root.to_payload() for root in self.roots],
        }
