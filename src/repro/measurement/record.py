"""Compact, portable per-run measurement records.

The persistent result cache and the golden regression fixtures both need a
stable on-disk form of :class:`~repro.measurement.campaign.RunMeasurement`.
This module defines that form: a JSON-able dict that round-trips every
field *bit-exactly* (floats are serialized through Python's shortest
round-trip ``repr``, so ``decode(encode(m))`` reconstructs the identical
values), with the histogram stored sparsely (populated bins only — the
scope histogram has 1600 bins but a short window touches a handful).

``SCHEMA_VERSION`` is part of every record **and** of the cache key, so a
change to what a record contains invalidates stale cache entries instead
of mis-decoding them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np

from repro.errors import MeasurementError
from repro.measurement.campaign import RunMeasurement, RunSpec
from repro.measurement.droops import DroopStatistics
from repro.measurement.histogram import CompressedHistogram
from repro.uarch.counters import PerformanceCounters
from repro.uarch.events import StallEvent

#: Bump whenever the record layout or any simulation-relevant schema
#: changes; old cache entries then miss (by key) rather than mis-decode.
SCHEMA_VERSION = 1

_EVENT_BY_LABEL = {event.value: event for event in StallEvent}


def _encode_stats(stats: DroopStatistics) -> Dict[str, Any]:
    return {
        "depths": [float(d) for d in stats.depths],
        "durations": [int(d) for d in stats.durations],
        "n_cycles": int(stats.n_cycles),
        "threshold": float(stats.threshold),
    }


def _decode_stats(payload: Mapping[str, Any]) -> DroopStatistics:
    return DroopStatistics(
        depths=np.asarray(payload["depths"], dtype=float),
        durations=np.asarray(payload["durations"], dtype=int),
        n_cycles=int(payload["n_cycles"]),
        threshold=float(payload["threshold"]),
    )


def _encode_counters(counters: PerformanceCounters) -> Dict[str, Any]:
    return {
        "cycles": int(counters.cycles),
        "instructions": float(counters.instructions),
        "stall_cycles": int(counters.stall_cycles),
        "events": {
            event.value: int(count)
            for event, count in sorted(
                counters.event_counts.items(), key=lambda item: item[0].value
            )
        },
    }


def _decode_counters(payload: Mapping[str, Any]) -> PerformanceCounters:
    events = {
        _EVENT_BY_LABEL[label]: int(count)
        for label, count in payload["events"].items()
    }
    return PerformanceCounters(
        cycles=int(payload["cycles"]),
        instructions=float(payload["instructions"]),
        stall_cycles=int(payload["stall_cycles"]),
        event_counts=events,
    )


def _encode_histogram(histogram: CompressedHistogram) -> Dict[str, Any]:
    counts = histogram.counts
    populated = np.flatnonzero(counts)
    return {
        "lo": float(histogram.lo),
        "hi": float(histogram.hi),
        "n_bins": int(histogram.n_bins),
        "nonzero": [[int(i), int(counts[i])] for i in populated],
    }


def _decode_histogram(payload: Mapping[str, Any]) -> CompressedHistogram:
    counts = np.zeros(int(payload["n_bins"]), dtype=np.int64)
    for index, count in payload["nonzero"]:
        counts[int(index)] = int(count)
    return CompressedHistogram.from_counts(
        float(payload["lo"]), float(payload["hi"]), counts
    )


def encode_measurement(measurement: RunMeasurement) -> Dict[str, Any]:
    """Encode one run's measurement as a JSON-able dict."""
    return {
        "schema": SCHEMA_VERSION,
        "spec": {
            "kind": measurement.spec.kind,
            "workloads": list(measurement.spec.workloads),
            "config": measurement.spec.config,
        },
        "n_cycles": int(measurement.n_cycles),
        "counters": [_encode_counters(c) for c in measurement.counters],
        "droops": _encode_stats(measurement.droops),
        "overshoots": _encode_stats(measurement.overshoots),
        "histogram": _encode_histogram(measurement.histogram),
        "droop_samples_per_1k": float(measurement.droop_samples_per_1k),
    }


def decode_measurement(payload: Mapping[str, Any]) -> RunMeasurement:
    """Rebuild a :class:`RunMeasurement` from its encoded record.

    Raises :class:`~repro.errors.MeasurementError` on schema mismatch;
    structurally invalid payloads raise ``KeyError``/``TypeError``/
    ``ValueError``, which cache readers treat as corruption (→ miss).
    """
    if payload.get("schema") != SCHEMA_VERSION:
        raise MeasurementError(
            f"record schema {payload.get('schema')!r} does not match "
            f"current schema {SCHEMA_VERSION}"
        )
    spec_payload = payload["spec"]
    spec = RunSpec(
        kind=str(spec_payload["kind"]),
        workloads=tuple(str(w) for w in spec_payload["workloads"]),
        config=str(spec_payload["config"]),
    )
    return RunMeasurement(
        spec=spec,
        n_cycles=int(payload["n_cycles"]),
        counters=tuple(_decode_counters(c) for c in payload["counters"]),
        droops=_decode_stats(payload["droops"]),
        overshoots=_decode_stats(payload["overshoots"]),
        histogram=_decode_histogram(payload["histogram"]),
        droop_samples_per_1k=float(payload["droop_samples_per_1k"]),
    )


def diff_measurements(a: RunMeasurement, b: RunMeasurement) -> List[str]:
    """Human-readable field-by-field differences between two measurements.

    Empty list ⇔ the two measurements are bit-identical.  Used by the
    equivalence tests (serial vs parallel, cold vs warm cache) and by the
    golden regression tests, whose failure message must say *what* drifted.
    """
    diffs: List[str] = []

    def check(field: str, va: Any, vb: Any) -> None:
        if va != vb:
            diffs.append(f"{field}: {va!r} != {vb!r}")

    check("spec", a.spec, b.spec)
    check("n_cycles", a.n_cycles, b.n_cycles)
    check("n_cores", len(a.counters), len(b.counters))
    for i, (ca, cb) in enumerate(zip(a.counters, b.counters)):
        check(f"counters[{i}].cycles", ca.cycles, cb.cycles)
        check(f"counters[{i}].instructions", ca.instructions, cb.instructions)
        check(f"counters[{i}].stall_cycles", ca.stall_cycles, cb.stall_cycles)
        check(
            f"counters[{i}].events",
            dict(ca.event_counts),
            dict(cb.event_counts),
        )
    for polarity in ("droops", "overshoots"):
        sa: DroopStatistics = getattr(a, polarity)
        sb: DroopStatistics = getattr(b, polarity)
        check(f"{polarity}.count", sa.count, sb.count)
        check(f"{polarity}.n_cycles", sa.n_cycles, sb.n_cycles)
        check(f"{polarity}.threshold", sa.threshold, sb.threshold)
        if sa.count == sb.count:
            for j in np.flatnonzero(sa.depths != sb.depths):
                check(
                    f"{polarity}.depths[{int(j)}]",
                    float(sa.depths[j]),
                    float(sb.depths[j]),
                )
            for j in np.flatnonzero(sa.durations != sb.durations):
                check(
                    f"{polarity}.durations[{int(j)}]",
                    int(sa.durations[j]),
                    int(sb.durations[j]),
                )
    check("histogram.lo", a.histogram.lo, b.histogram.lo)
    check("histogram.hi", a.histogram.hi, b.histogram.hi)
    check("histogram.n_bins", a.histogram.n_bins, b.histogram.n_bins)
    if a.histogram.n_bins == b.histogram.n_bins:
        ca_hist, cb_hist = a.histogram.counts, b.histogram.counts
        for j in np.flatnonzero(ca_hist != cb_hist):
            check(
                f"histogram.counts[{int(j)}]",
                int(ca_hist[j]),
                int(cb_hist[j]),
            )
    check("droop_samples_per_1k", a.droop_samples_per_1k, b.droop_samples_per_1k)
    return diffs


def measurements_identical(a: RunMeasurement, b: RunMeasurement) -> bool:
    """True iff every field of the two measurements matches bit-for-bit."""
    return not diff_measurements(a, b)
