"""Batched fast path vs per-run simulation: bit-identity battery.

The vectorized hot path introduces three batch primitives —
:meth:`TransientSimulator.simulate_batch`, :meth:`Chip.run_batch` and
:meth:`MeasurementCampaign.simulate_batch` — plus an executor seam that
routes uninstrumented serial campaigns through them.  Their shared
contract is *bit-identity*: stacking N runs into one filtered batch must
produce exactly the floats the N separate runs produce, for any input.
These tests pin that contract at every layer, including the property
that a stacked ``sosfilt`` equals N independent calls, and the
jobs-invariance of the executor seam (batched serial == process pool).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.measurement.campaign import MeasurementCampaign
from repro.measurement.record import diff_measurements
from repro.pdn.platform import build_simulator
from repro.uarch.chip import Chip
from repro.workloads.spec import SPEC_CPU2006


def _mixed_specs(campaign):
    """All three run kinds on a quad-core chip, 16 runs."""
    singles = [
        campaign.run_spec(name, kind="single")
        for name in ("mcf", "lbm", "milc", "sjeng")
    ]
    groups = [
        campaign.run_spec(*group, kind="multiprogram")
        for group in (
            ("mcf", "lbm", "namd", "povray"),
            ("gcc", "bzip2", "milc", "sjeng"),
            ("mcf", "milc", "lbm", "gcc"),
            ("namd", "povray", "sjeng", "bzip2"),
        )
    ]
    specrate = [
        campaign.run_spec(name, name, name, name, kind="multiprogram")
        for name in ("mcf", "lbm", "namd", "povray")
    ]
    threaded = [
        campaign.run_spec(name, kind="multithread")
        for name in ("canneal", "dedup", "ferret", "x264")
    ]
    return singles + groups + specrate + threaded


def _assert_identical(runs_a, runs_b):
    assert len(runs_a) == len(runs_b)
    for a, b in zip(runs_a, runs_b):
        diffs = diff_measurements(a, b)
        assert not diffs, (
            f"{a.spec.label}: measurements differ:\n  " + "\n  ".join(diffs)
        )


def _random_currents(seed: int, n_traces: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    steps = rng.normal(0, 0.3, (n_traces, n))
    return np.clip(10.0 + np.cumsum(steps, axis=-1), 1.0, 40.0)


class TestStackedSosfiltProperty:
    """Stacked PDN solve == N separate solves, for any stimulus."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_traces=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_rows_bit_identical(self, seed, n_traces):
        simulator = build_simulator("Proc100", with_ripple=False)
        currents = _random_currents(seed, n_traces, 2000)
        batched = simulator.simulate_batch(currents)
        for row, trace in enumerate(batched):
            single = simulator.simulate(currents[row])
            assert np.array_equal(trace.samples, single.samples), (
                f"row {row} of {n_traces} diverged from the separate solve"
            )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_batch_rows_bit_identical_with_ripple(self, seed):
        simulator = build_simulator("Proc25", with_ripple=True)
        currents = _random_currents(seed, 3, 2000)
        seeds = [seed * 3 + row for row in range(3)]
        batched = simulator.simulate_batch(currents, seeds=seeds)
        for row, trace in enumerate(batched):
            single = simulator.simulate(currents[row], seed=seeds[row])
            assert np.array_equal(trace.samples, single.samples)


class TestChipRunBatch:
    def test_run_batch_matches_run(self):
        chip_a = Chip("Proc100", n_cores=2)
        chip_b = Chip("Proc100", n_cores=2)
        names = ["mcf", "lbm", "namd", "povray"]
        groups = []
        for index, name in enumerate(names):
            rng = np.random.default_rng(index)
            windows = [
                SPEC_CPU2006[name].sample_window(4000, rng=rng),
                SPEC_CPU2006[names[-1 - index]].sample_window(4000, rng=rng),
            ]
            groups.append(windows)
        serial = [
            chip_a.run(windows, seed=1000 + i)
            for i, windows in enumerate(groups)
        ]
        batched = chip_b.run_batch(
            groups, seeds=[1000 + i for i in range(len(groups))]
        )
        for a, b in zip(serial, batched):
            assert np.array_equal(a.voltage.samples, b.voltage.samples)
            assert np.array_equal(
                a.total_current_amps, b.total_current_amps
            )
            assert tuple(e.counters for e in a.cores) == tuple(
                e.counters for e in b.cores
            )


class TestCampaignSimulateBatch:
    def test_batch_matches_per_run_simulate(self):
        serial = MeasurementCampaign(
            "Proc100", n_cycles=4000, seed=7, jobs=1, n_cores=4
        )
        batched = MeasurementCampaign(
            "Proc100", n_cycles=4000, seed=7, jobs=1, n_cores=4
        )
        specs = _mixed_specs(serial)
        _assert_identical(
            [serial.simulate(spec) for spec in specs],
            batched.simulate_batch(specs),
        )


class TestJobsInvariance:
    """The executor seam: batched serial == process-pool fan-out."""

    def test_batched_serial_matches_jobs_2(self):
        serial = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=3, jobs=1, n_cores=4
        )
        pooled = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=3, jobs=2, n_cores=4
        )
        specs_a = _mixed_specs(serial)
        specs_b = _mixed_specs(pooled)
        _assert_identical(
            serial.measure_specs(specs_a), pooled.measure_specs(specs_b)
        )

    def test_chunk_boundary_is_invisible(self):
        # More specs than one BATCH_CHUNK_RUNS chunk: the chunked fast
        # path must agree with fresh per-run simulation across the seam.
        names = ("mcf", "lbm", "namd", "povray", "milc")
        chunked = MeasurementCampaign("Proc3", n_cycles=2000, seed=11, jobs=1)
        reference = MeasurementCampaign(
            "Proc3", n_cycles=2000, seed=11, jobs=1
        )
        specs = [
            chunked.run_spec(a, b, kind="multiprogram")
            for a in names
            for b in names
        ]
        assert len(specs) > 16
        _assert_identical(
            chunked.measure_specs(specs),
            [reference.simulate(spec) for spec in specs],
        )
