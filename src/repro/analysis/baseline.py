"""Baseline files: grandfathered findings that do not fail the build.

A baseline is a committed JSON file listing findings that existed when a
rule was introduced.  Matching is by ``(path, code, fingerprint)`` — the
fingerprint hashes the offending line's *text*, so baselined findings
survive edits elsewhere in the file but expire the moment the offending
line itself changes.  The shipped ``simlint-baseline.json`` grandfathers
exactly one thing — the ``OBS001`` wall-clock comparison in
``examples/parallel_sweep.py``, whose speedup measurement is the point
of that example — and the test suite pins it to that.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.findings import Finding

#: Default baseline filename, looked up in the current directory.
DEFAULT_BASELINE = "simlint-baseline.json"

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """An accepted set of ``(path, code, fingerprint)`` identities."""

    entries: frozenset

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=frozenset())

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(
            entries=frozenset(
                (f.path, f.code, f.fingerprint) for f in findings
            )
        )

    def __contains__(self, finding: Finding) -> bool:
        key: Tuple[str, str, str] = (
            finding.path,
            finding.code,
            finding.fingerprint,
        )
        return key in self.entries

    def filter(self, findings: Sequence[Finding]) -> List[Finding]:
        """Findings not covered by this baseline."""
        return [f for f in findings if f not in self]


def load(path: str) -> Baseline:
    """Load a baseline file (raises ``ValueError`` on a bad format)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path} is not a simlint baseline file")
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path} has baseline version {version!r}; "
            f"this simlint reads version {_FORMAT_VERSION}"
        )
    entries = set()
    for item in payload["findings"]:
        entries.add((item["path"], item["code"], item["fingerprint"]))
    return Baseline(entries=frozenset(entries))


def save(path: str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, stable output)."""
    items = sorted(
        (
            {
                "path": f.path,
                "code": f.code,
                "line": f.line,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in findings
        ),
        key=lambda item: (item["path"], str(item["line"]), item["code"]),
    )
    payload = {"version": _FORMAT_VERSION, "findings": items}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def discover(explicit: str | None) -> Tuple[Baseline, str | None]:
    """Resolve the baseline to use.

    ``explicit`` wins (and must exist); otherwise ``simlint-baseline.json``
    in the current directory is used when present; otherwise the empty
    baseline.
    """
    if explicit is not None:
        return load(explicit), explicit
    if os.path.isfile(DEFAULT_BASELINE):
        return load(DEFAULT_BASELINE), DEFAULT_BASELINE
    return Baseline.empty(), None
