"""Unit tests for the single-core execution model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch.core import Core, CoreParameters
from repro.uarch.events import StallEvent
from repro.uarch.window import ExecutionWindow


def window(activity=0.8, n=5000, events=(), ipc=1.5):
    return ExecutionWindow(
        baseline_activity=np.full(n, activity),
        events=list(events),
        base_ipc=ipc,
        label="test",
    )


class TestCoreParameters:
    def test_defaults_valid(self):
        CoreParameters()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoreParameters(leakage_amps=-1)
        with pytest.raises(ConfigurationError):
            CoreParameters(dynamic_max_amps=0)
        with pytest.raises(ConfigurationError):
            CoreParameters(fast_fraction=0)
        with pytest.raises(ConfigurationError):
            CoreParameters(gating_tau_cycles=0)


class TestCore:
    def test_constant_activity_constant_current(self):
        core = Core()
        execution = core.execute(window(activity=0.6))
        params = core.parameters
        expected = params.leakage_amps + params.dynamic_max_amps * 0.6
        assert np.allclose(execution.current_amps, expected, atol=1e-9)

    def test_current_bounded_by_budget(self):
        core = Core()
        events = [(i, StallEvent.BRANCH_MISPREDICT) for i in range(0, 4000, 40)]
        execution = core.execute(window(activity=1.0, events=events))
        params = core.parameters
        ceiling = params.leakage_amps + params.dynamic_max_amps * 1.5
        assert execution.current_amps.max() <= ceiling
        assert execution.current_amps.min() >= params.leakage_amps

    def test_stall_event_reduces_instructions(self):
        core = Core()
        clean = core.execute(window())
        events = [(i, StallEvent.L2_MISS) for i in range(0, 4000, 500)]
        stalled = core.execute(window(events=events))
        assert stalled.counters.instructions < clean.counters.instructions
        assert stalled.counters.stall_ratio > clean.counters.stall_ratio

    def test_counters_record_event_counts(self):
        core = Core()
        events = [(100, StallEvent.TLB_MISS), (300, StallEvent.TLB_MISS),
                  (900, StallEvent.L1_MISS)]
        execution = core.execute(window(events=events))
        assert execution.counters.event_count(StallEvent.TLB_MISS) == 2
        assert execution.counters.event_count(StallEvent.L1_MISS) == 1

    def test_fast_edge_is_fraction_of_dynamic_current(self):
        """A one-cycle flush only swings the fast gating component."""
        core = Core()
        execution = core.execute(
            window(activity=1.0, events=[(2500, StallEvent.BRANCH_MISPREDICT)])
        )
        current = execution.current_amps
        # Largest single-cycle delta is bounded by fast_fraction * dyn.
        max_step = np.abs(np.diff(current)).max()
        params = core.parameters
        bound = params.fast_fraction * params.dynamic_max_amps * 1.1
        assert 0 < max_step <= bound

    def test_slow_component_follows_sustained_stall(self):
        """A long stall eventually drains (almost) the full dynamic current."""
        core = Core()
        n = 8000
        baseline = np.full(n, 0.9)
        baseline[3000:] = 0.05  # sustained drop
        execution = core.execute(
            ExecutionWindow(baseline_activity=baseline, events=[], base_ipc=1.0)
        )
        params = core.parameters
        early = execution.current_amps[2500]
        late = execution.current_amps[-1]
        full_swing = params.dynamic_max_amps * 0.85
        assert early - late > 0.9 * full_swing

    def test_ipc_scales_with_activity(self):
        core = Core()
        high = core.execute(window(activity=0.9, ipc=2.0))
        low = core.execute(window(activity=0.45, ipc=2.0))
        assert high.counters.ipc == pytest.approx(2.0 * 0.9, rel=1e-6)
        assert low.counters.ipc == pytest.approx(2.0 * 0.45, rel=1e-6)
