"""Workload abstractions and the statistical window synthesizer.

A workload is anything that can produce an
:class:`~repro.uarch.window.ExecutionWindow` for a requested point of
program time.  Most workloads are *statistical*: a
:class:`StatProfile` captures the noise-relevant structure of a program
region —

* mean activity and its slow wander (an Ornstein–Uhlenbeck component whose
  microsecond-scale time constant puts spectral content exactly in the
  package resonance band);
* a two-state burst model (compute-bound vs memory-bound dwell) that
  modulates activity and L2-miss rate the way real memory phases do;
* per-cycle Poisson rates for each stall event;
* the base IPC of the region.

Program-scale behaviour (the paper's "voltage noise phases", Fig. 14) is a
timeline of such profiles: :class:`PhasedWorkload` stitches
:class:`PhaseSegment` entries into a schedule and samples whichever profile
is active at the requested time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import signal

from repro.errors import ConfigurationError, WorkloadError
from repro.random_utils import SeedLike, as_generator
from repro.uarch.events import EVENT_ORDER, EventTrace, StallEvent
from repro.uarch.window import ExecutionWindow


@dataclass(frozen=True)
class BurstModel:
    """Two-state (compute / memory-bound) burst modulation.

    Parameters
    ----------
    memory_fraction:
        Long-run fraction of time spent in the memory-bound state.
    dwell_cycles:
        Mean dwell time per state visit; thousands of cycles puts the
        modulation into the package resonance band.
    activity_drop:
        Multiplier on baseline activity while memory-bound.
    event_boost:
        Multiplier on all stall-event rates while in the stall-burst
        state.  Real programs' misses and mispredictions cluster into
        phases rather than arriving uniformly; this clustering is what
        puts dI/dt energy into the package resonance band.
    """

    memory_fraction: float = 0.25
    dwell_cycles: float = 2000.0
    activity_drop: float = 0.55
    event_boost: float = 5.0

    def __post_init__(self) -> None:
        if not 0 <= self.memory_fraction < 1:
            raise ConfigurationError("memory_fraction must be in [0, 1)")
        if self.dwell_cycles <= 0:
            raise ConfigurationError("dwell_cycles must be positive")
        if not 0 < self.activity_drop <= 1:
            raise ConfigurationError("activity_drop must be in (0, 1]")
        if self.event_boost < 1:
            raise ConfigurationError("event_boost must be >= 1")

    def state_series(self, n_cycles: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean per-cycle series: True while memory-bound."""
        if self.memory_fraction == 0:
            return np.zeros(n_cycles, dtype=bool)
        states = np.zeros(n_cycles, dtype=bool)
        # Alternate exponential dwells; scale dwell lengths so the duty
        # cycle matches memory_fraction.
        mem_dwell = self.dwell_cycles * 2 * self.memory_fraction
        cpu_dwell = self.dwell_cycles * 2 * (1 - self.memory_fraction)
        position = 0
        memory_bound = bool(rng.random() < self.memory_fraction)
        while position < n_cycles:
            mean = mem_dwell if memory_bound else cpu_dwell
            length = max(1, int(rng.exponential(mean)))
            if memory_bound:
                states[position : position + length] = True
            position += length
            memory_bound = not memory_bound
        return states


@dataclass(frozen=True)
class StatProfile:
    """The noise-relevant statistics of one program region."""

    mean_activity: float
    activity_sigma: float = 0.05
    activity_tau_cycles: float = 3000.0
    event_rates: Mapping[StallEvent, float] = field(default_factory=dict)
    burst: Optional[BurstModel] = None
    base_ipc: float = 1.5

    def __post_init__(self) -> None:
        if not 0 < self.mean_activity <= 1:
            raise ConfigurationError("mean_activity must be in (0, 1]")
        if self.activity_sigma < 0:
            raise ConfigurationError("activity_sigma must be non-negative")
        if self.activity_tau_cycles <= 0:
            raise ConfigurationError("activity_tau_cycles must be positive")
        if self.base_ipc <= 0:
            raise ConfigurationError("base_ipc must be positive")
        for event, rate in self.event_rates.items():
            if not isinstance(event, StallEvent):
                raise ConfigurationError(f"not a StallEvent: {event!r}")
            if rate < 0:
                raise ConfigurationError(f"negative rate for {event}")

    def rate(self, event: StallEvent) -> float:
        return float(self.event_rates.get(event, 0.0))

    def expected_stall_ratio(self) -> float:
        """First-order estimate of the stall ratio this profile produces."""
        from repro.uarch.events import profile_for

        total = 0.0
        for event, rate in self.event_rates.items():
            profile = profile_for(event)
            if profile.drop_fraction >= 0.5:
                total += rate * (profile.stall_cycles + profile.drain_cycles)
        return min(total, 1.0)


def _ou_series(
    n_cycles: int,
    sigma: float,
    tau_cycles: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A zero-mean Ornstein–Uhlenbeck series (stationary start)."""
    if sigma == 0:
        return np.zeros(n_cycles)
    alpha = np.exp(-1.0 / tau_cycles)
    drive = rng.normal(0.0, sigma * np.sqrt(1 - alpha**2), size=n_cycles)
    drive[0] = rng.normal(0.0, sigma)
    series = signal.lfilter([1.0], [1.0, -alpha], drive)
    return series


def _poisson_events(
    n_cycles: int,
    rate_per_cycle: float,
    rng: np.random.Generator,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Cycle indices of Poisson arrivals, optionally restricted to a mask."""
    if rate_per_cycle <= 0:
        return np.empty(0, dtype=int)
    if mask is None:
        count = rng.poisson(rate_per_cycle * n_cycles)
        return rng.integers(0, n_cycles, size=count)
    eligible = np.flatnonzero(mask)
    if eligible.size == 0:
        return np.empty(0, dtype=int)
    count = rng.poisson(rate_per_cycle * eligible.size)
    return rng.choice(eligible, size=count, replace=True)


class _WindowDraw:
    """Everything one window needs from the RNG, before the OU filter.

    Splitting window synthesis into a *draw* phase (pure RNG, no
    filtering) and an *assemble* phase lets a batch of windows share a
    single ``lfilter`` call for their OU series, and keeps every
    filter call out of the per-window loops the PERF lint audits.
    """

    __slots__ = ("drive", "memory_bound", "trace", "label")

    def __init__(
        self,
        drive: Optional[np.ndarray],
        memory_bound: Optional[np.ndarray],
        trace: EventTrace,
        label: str,
    ) -> None:
        self.drive = drive
        self.memory_bound = memory_bound
        self.trace = trace
        self.label = label


def _event_cycles(
    profile: StatProfile,
    event: StallEvent,
    n_cycles: int,
    memory_bound: Optional[np.ndarray],
    clustered: bool,
    generator: np.random.Generator,
) -> np.ndarray:
    """One event kind's occurrence cycles (same draw order as before)."""
    rate = profile.rate(event)
    if rate <= 0:
        return np.empty(0, dtype=np.intp)
    if clustered:
        # Split each event rate between the two burst states so the
        # long-run rate is preserved but occurrences cluster inside
        # stall bursts.
        boost = profile.burst.event_boost
        frac_mem = memory_bound.mean()
        base_rate = rate / (1 - frac_mem + boost * frac_mem)
        cycles_cpu = _poisson_events(
            n_cycles, base_rate, generator, mask=~memory_bound
        )
        cycles_mem = _poisson_events(
            n_cycles, base_rate * boost, generator, mask=memory_bound
        )
        return np.concatenate([cycles_cpu, cycles_mem])
    return _poisson_events(n_cycles, rate, generator)


def _draw_window(
    profile: StatProfile,
    n_cycles: int,
    generator: np.random.Generator,
    label: str,
) -> _WindowDraw:
    """Consume the RNG exactly as ``synthesize_window`` always has."""
    if profile.activity_sigma == 0:
        drive: Optional[np.ndarray] = None
    else:
        alpha = np.exp(-1.0 / profile.activity_tau_cycles)
        drive = generator.normal(
            0.0,
            profile.activity_sigma * np.sqrt(1 - alpha**2),
            size=n_cycles,
        )
        drive[0] = generator.normal(0.0, profile.activity_sigma)

    memory_bound: Optional[np.ndarray] = None
    if profile.burst is not None:
        memory_bound = profile.burst.state_series(n_cycles, generator)
    clustered = memory_bound is not None and bool(memory_bound.any())

    chunks = [
        _event_cycles(
            profile, event, n_cycles, memory_bound, clustered, generator
        )
        for event in EVENT_ORDER
    ]
    codes = np.concatenate([
        np.full(chunk.size, code, dtype=np.uint8)
        for code, chunk in enumerate(chunks)
    ])
    # Stable sort == the list.sort(key=cycle) it replaced: ties keep
    # the per-kind build order.
    trace = EventTrace(np.concatenate(chunks), codes).sorted_by_cycle()
    return _WindowDraw(drive, memory_bound, trace, label)


def _assemble_windows(
    profile: StatProfile,
    draws: Sequence[_WindowDraw],
    n_cycles: int,
) -> List[ExecutionWindow]:
    """OU-filter all draws in one lfilter call and build the windows."""
    series = np.zeros((len(draws), n_cycles))
    live = [i for i, draw in enumerate(draws) if draw.drive is not None]
    if live:
        alpha = np.exp(-1.0 / profile.activity_tau_cycles)
        stacked = np.stack([draws[i].drive for i in live])
        series[live] = signal.lfilter([1.0], [1.0, -alpha], stacked, axis=-1)
    return [
        _finish_window(profile, draw, series[i])
        for i, draw in enumerate(draws)
    ]


def _finish_window(
    profile: StatProfile, draw: _WindowDraw, series: np.ndarray
) -> ExecutionWindow:
    baseline = profile.mean_activity + series
    if draw.memory_bound is not None:
        baseline = np.where(
            draw.memory_bound,
            baseline * profile.burst.activity_drop,
            baseline,
        )
    baseline = np.clip(baseline, 0.01, 1.0)
    return ExecutionWindow(
        baseline_activity=baseline,
        events=draw.trace,
        base_ipc=profile.base_ipc,
        label=draw.label,
    )


def synthesize_window(
    profile: StatProfile,
    n_cycles: int,
    rng: SeedLike = None,
    label: str = "",
) -> ExecutionWindow:
    """Sample one execution window from a statistical profile."""
    if n_cycles <= 0:
        raise ConfigurationError("n_cycles must be positive")
    generator = as_generator(rng)
    draw = _draw_window(profile, n_cycles, generator, label)
    return _assemble_windows(profile, [draw], n_cycles)[0]


def synthesize_windows(
    profile: StatProfile,
    n_cycles: int,
    rngs: Sequence[SeedLike],
    labels: Optional[Sequence[str]] = None,
) -> List[ExecutionWindow]:
    """Sample many windows of one profile through one batched OU filter.

    Each window is bit-identical to ``synthesize_window(profile,
    n_cycles, rngs[i], labels[i])`` — the draws consume each RNG in the
    original order, and a batched ``lfilter`` row equals the 1-D call —
    but the whole batch pays for a single filter invocation.
    """
    if n_cycles <= 0:
        raise ConfigurationError("n_cycles must be positive")
    if labels is None:
        labels = [""] * len(rngs)
    if len(labels) != len(rngs):
        raise ConfigurationError("one label per rng required")
    draws = [
        _draw_window(profile, n_cycles, as_generator(rngs[index]), label)
        for index, label in enumerate(labels)
    ]
    return _assemble_windows(profile, draws, n_cycles)


class Workload(abc.ABC):
    """Anything that can be sampled into execution windows.

    Subclasses define :attr:`name`, :attr:`duration_seconds` and
    :meth:`sample_window`.
    """

    name: str = "workload"
    duration_seconds: float = 600.0

    @abc.abstractmethod
    def sample_window(
        self,
        n_cycles: int,
        rng: SeedLike = None,
        at_time_s: float = 0.0,
    ) -> ExecutionWindow:
        """Sample a representative window at program time ``at_time_s``."""

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}({self.name!r})"


class StatisticalWorkload(Workload):
    """A workload fully described by a single :class:`StatProfile`."""

    def __init__(
        self,
        name: str,
        profile: StatProfile,
        duration_seconds: float = 600.0,
    ) -> None:
        if duration_seconds <= 0:
            raise ConfigurationError("duration_seconds must be positive")
        self.name = name
        self.profile = profile
        self.duration_seconds = float(duration_seconds)

    def sample_window(
        self,
        n_cycles: int,
        rng: SeedLike = None,
        at_time_s: float = 0.0,
    ) -> ExecutionWindow:
        return synthesize_window(self.profile, n_cycles, rng, label=self.name)

    def profile_at(self, at_time_s: float) -> StatProfile:
        return self.profile


@dataclass(frozen=True)
class PhaseSegment:
    """One phase of a phased workload."""

    duration_seconds: float
    profile: StatProfile
    name: str = ""

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ConfigurationError("duration_seconds must be positive")


class PhasedWorkload(Workload):
    """A workload whose statistics follow a timeline of phases.

    Parameters
    ----------
    name:
        Workload name.
    segments:
        Ordered phases; their durations sum to the program duration.
    repeat:
        When True the timeline wraps around (oscillating workloads like
        465.tonto); when False, time past the end clamps to the final
        phase.
    total_duration_seconds:
        Overall program duration.  Defaults to the sum of the segment
        durations; a repeating workload usually sets it much longer than
        one cycle through the segments.
    """

    def __init__(
        self,
        name: str,
        segments: Sequence[PhaseSegment],
        repeat: bool = False,
        total_duration_seconds: Optional[float] = None,
    ) -> None:
        if not segments:
            raise WorkloadError("a phased workload needs at least one phase")
        self.name = name
        self._segments = tuple(segments)
        self._repeat = bool(repeat)
        self._cycle_seconds = float(
            sum(seg.duration_seconds for seg in segments)
        )
        if total_duration_seconds is None:
            total_duration_seconds = self._cycle_seconds
        if total_duration_seconds <= 0:
            raise WorkloadError("total_duration_seconds must be positive")
        self.duration_seconds = float(total_duration_seconds)

    @property
    def segments(self) -> Tuple[PhaseSegment, ...]:
        return self._segments

    @property
    def cycle_seconds(self) -> float:
        """Duration of one pass through the segment timeline."""
        return self._cycle_seconds

    def profile_at(self, at_time_s: float) -> StatProfile:
        """The statistical profile active at program time ``at_time_s``."""
        if at_time_s < 0:
            raise WorkloadError("at_time_s must be non-negative")
        time = at_time_s
        if self._repeat:
            time = time % self._cycle_seconds
        elif time >= self._cycle_seconds:
            return self._segments[-1].profile
        for segment in self._segments:
            if time < segment.duration_seconds:
                return segment.profile
            time -= segment.duration_seconds
        return self._segments[-1].profile

    def sample_window(
        self,
        n_cycles: int,
        rng: SeedLike = None,
        at_time_s: float = 0.0,
    ) -> ExecutionWindow:
        profile = self.profile_at(at_time_s)
        return synthesize_window(profile, n_cycles, rng, label=self.name)
