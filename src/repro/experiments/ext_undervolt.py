"""Extension — the undervolting frontier: Vmin maps and energy savings.

The paper's economic argument (Sec. I): the worst-case guardband exists
for droops that almost never happen, and every cycle pays its
squared-voltage energy cost.  This harness runs the Vmin sweep over a
small workload set and a three-point frequency grid, reporting each
cell's safe set-point floor and the per-operating-point frontier — how
much guardband a workload-aware regulator could reclaim, and what that
is worth in dynamic energy (the system-level V/F characterization
protocol of Papadimitriou et al., arXiv:2106.09975).

Expected shape: Vmin falls steeply as the clock backs off the shipped
1.86 GHz anchor (the alpha-power law dominates the droop term), so even
one frequency step down opens double-digit energy savings; across
workloads the loudest mix sets the frontier, exactly as the loudest
virus set the margin in Sec. II-C.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.context import window_cycles
from repro.undervolt import run_sweep

#: Workload tokens characterized per protocol size.  Both span the
#: single/multiprogram kinds; the full set adds quieter and louder mixes
#: so the frontier's limiting workload is non-trivial.
QUICK_WORKLOADS = ("lbm", "mcf", "mcf+lbm")
FULL_WORKLOADS = (
    "lbm", "libquantum", "mcf", "mcf+lbm", "namd", "namd+povray",
)

#: Core counts swept per protocol size.
QUICK_CORE_COUNTS = (2,)
FULL_CORE_COUNTS = (2, 4)


def run(quick: bool = False, config: str = "Proc100") -> ExperimentResult:
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    core_counts = QUICK_CORE_COUNTS if quick else FULL_CORE_COUNTS
    vmin_map = run_sweep(
        workloads=workloads,
        core_counts=core_counts,
        config=config,
        n_cycles=window_cycles(quick),
    )
    result = ExperimentResult(
        experiment_id="Ext. F",
        title=f"Undervolting frontier on {config}",
        columns=("workload", "cores", "GHz", "Vmin V", "guardband",
                 "energy saved"),
    )
    result.series["vmin_map"] = vmin_map
    for cell in vmin_map.cells:
        result.add_row(
            cell.workload,
            cell.n_cores,
            cell.frequency_ghz,
            round(cell.vmin_volt, 4),
            f"{cell.guardband_fraction:.1%}",
            f"{cell.energy_savings_fraction:.1%}",
        )
    for point in vmin_map.frontier:
        result.notes.append(
            f"{point.n_cores} cores @ {point.frequency_ghz:g} GHz: "
            f"frontier Vmin {point.vmin_volt:.3f} V "
            f"(limited by {point.limiting_workload}), "
            f"{point.energy_savings_fraction:.1%} energy saved at the "
            f"reduced guardband"
        )
    worst = vmin_map.worst_point()
    result.notes.append(
        f"least margin anywhere: {worst.vmin_volt:.3f} V at "
        f"{worst.frequency_ghz:g} GHz on {worst.n_cores} cores — "
        "running below it trips voltage-dependent bit errors "
        "(see `repro undervolt-sweep --probe-depth-mv`)"
    )
    return result
