"""Campaign execution engine: parallel fan-out + persistent result cache.

The 881-run characterization protocol is embarrassingly parallel: every
run derives its random stream *directly from the campaign's base seed and
its own spec* (see :meth:`MeasurementCampaign.simulate`), so no run
depends on any other's execution.  :class:`CampaignExecutor` exploits
that twice over:

* **fan-out** — cache misses are dispatched to a
  :class:`~concurrent.futures.ProcessPoolExecutor`; because each worker
  re-derives the identical per-run stream from ``(seed, spec)``, parallel
  and serial execution produce *bit-identical* measurements (enforced by
  the equivalence test battery);
* **persistence** — every simulated run is written to a
  :class:`~repro.measurement.cache.ResultCache`, so later processes (and
  the full Fig. 7–19 + Tab. I pipeline) replay warm runs without
  re-simulating.

Seeds that are live :class:`numpy.random.Generator` objects have state
rather than identity; for those the executor degrades gracefully to
serial, uncached simulation (results then depend on call order, exactly
as they always did).

Module-level aggregate statistics (:func:`global_stats`) power the cache
hit/miss and wall-time lines in :mod:`repro.reporting`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import observability as obs
from repro.errors import ConfigurationError
from repro.measurement.cache import CacheStats, ResultCache, cache_key
from repro.measurement.campaign import (
    HISTOGRAM_BINS,
    HISTOGRAM_HI,
    HISTOGRAM_LO,
    MeasurementCampaign,
    RunMeasurement,
    RunSpec,
)
from repro.measurement.record import decode_measurement
from repro.pdn.decap import proc_config
from repro.random_utils import seed_fingerprint

#: Environment override for the default worker count (read by
#: :func:`default_jobs`; the CI matrix sets ``REPRO_JOBS=2`` so the
#: parallel path is exercised on every push).
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (defaults to 1 = serial)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOBS_ENV} must be an integer, got {raw!r}"
        ) from None
    if jobs < 1:
        raise ConfigurationError(f"{JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


class ExecutorStats:
    """Counters for one executor: cache traffic, simulations, wall time."""

    __slots__ = ("cache", "memory_hits", "simulated", "parallel_batches",
                 "wall_seconds")

    def __init__(self) -> None:
        self.cache = CacheStats()
        self.memory_hits = 0
        self.simulated = 0
        self.parallel_batches = 0
        self.wall_seconds = 0.0

    def merged_into(self, other: "ExecutorStats") -> None:
        self.cache.merged_into(other.cache)
        other.memory_hits += self.memory_hits
        other.simulated += self.simulated
        other.parallel_batches += self.parallel_batches
        other.wall_seconds += self.wall_seconds

    def summary(self) -> str:
        return (
            f"cache: {self.cache.summary()}; {self.memory_hits} in-memory "
            f"hits; {self.simulated} runs simulated "
            f"({self.parallel_batches} parallel batches); "
            f"{self.wall_seconds:.1f} s execution wall time"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ExecutorStats({self.summary()})"


#: Process-wide aggregate, updated by every executor batch; the report
#: generator resets it, runs the suites, then renders the totals.
_GLOBAL_STATS = ExecutorStats()


def global_stats() -> ExecutorStats:
    """The process-wide aggregate executor statistics."""
    return _GLOBAL_STATS


def reset_global_stats() -> None:
    """Zero the process-wide aggregate (start of a report run)."""
    global _GLOBAL_STATS
    _GLOBAL_STATS = ExecutorStats()


def config_fingerprint(config: str, n_cores: int) -> Dict[str, Any]:
    """Simulation-relevant parameters folded into every cache key.

    Captures what, besides the run spec / window / seed, determines a
    measurement: the decap configuration's electrical identity, the core
    count, and the campaign's histogram binning.
    """
    decap = proc_config(config)
    return {
        "config": decap.name,
        "decap_fraction": decap.fraction,
        "effective_fraction": decap.effective_fraction,
        "n_cores": int(n_cores),
        "with_ripple": True,
        "histogram": [HISTOGRAM_LO, HISTOGRAM_HI, HISTOGRAM_BINS],
    }


def _record_batch_telemetry(
    measurements: Sequence[RunMeasurement], batch: ExecutorStats
) -> None:
    """Record one batch's metric samples (observability enabled only).

    Content metrics (runs, cycles, droop/overshoot events by depth
    bucket, the droops-per-1K histogram) are derived from the returned
    measurements — whether they came from memo, cache, or simulation —
    so their values depend only on the requested specs, never on cache
    temperature or worker count.  Traffic and wall-time samples come
    from the batch statistics and describe this execution.
    """
    obs.increment("repro_runs_total", len(measurements))
    for measurement in measurements:
        obs.increment("repro_run_cycles_total", measurement.n_cycles)
        for depth in measurement.droops.depths:
            obs.increment(
                "repro_droop_events_total",
                depth=obs.depth_bucket(float(depth)),
            )
        for depth in measurement.overshoots.depths:
            obs.increment(
                "repro_overshoot_events_total",
                depth=obs.depth_bucket(float(depth)),
            )
        obs.observe(
            "repro_run_droops_per_1k", measurement.droop_samples_per_1k
        )
    obs.increment("repro_memo_hits_total", batch.memory_hits)
    obs.increment("repro_cache_hits_total", batch.cache.hits)
    obs.increment("repro_cache_misses_total", batch.cache.misses)
    obs.increment("repro_cache_stores_total", batch.cache.stores)
    obs.increment("repro_cache_corrupt_total", batch.cache.corrupt)
    obs.increment("repro_runs_simulated_total", batch.simulated)
    obs.increment(
        "repro_parallel_batches_total", batch.parallel_batches
    )
    obs.increment(
        "repro_batch_wall_seconds_total", batch.wall_seconds
    )


def _absorb_worker_payloads(
    payloads: Sequence[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """Merge worker telemetry into the active session, in input order.

    Input order is spec order (:meth:`ProcessPoolExecutor.map`
    preserves it), which is what makes the merged span tree and the
    counter totals independent of process placement.
    """
    session = obs.active_session()
    records: List[Dict[str, Any]] = []
    for payload in payloads:
        records.append(dict(payload["record"]))
        if session is not None:
            session.absorb_worker(payload["telemetry"])
    return records


def _simulate_record(
    config: str,
    n_cycles: int,
    seed: int,
    spec_fields: Tuple[str, Tuple[str, ...], str],
    telemetry: bool = False,
) -> Dict[str, Any]:
    """Worker entry point: simulate one run, return its encoded record.

    Must stay a module-level function (pickled by name into pool
    workers).  Builds a throwaway serial campaign so the derived stream
    is exactly what the parent's campaign would have used.

    With ``telemetry=True`` the run executes under a fresh
    worker-local observability session whose spans and metric samples
    travel back alongside the record (``{"record": ..., "telemetry":
    ...}``); the parent grafts them into its own session in spec order,
    so a parallel campaign produces one merged, deterministic trace.
    """
    from repro.measurement.record import encode_measurement

    kind, workloads, spec_config = spec_fields
    campaign = MeasurementCampaign(config, n_cycles=n_cycles, seed=seed)
    spec = RunSpec(kind=kind, workloads=tuple(workloads), config=spec_config)
    if not telemetry:
        return encode_measurement(campaign.simulate(spec))
    with obs.capture() as session:
        obs.increment("repro_worker_runs_total", worker=os.getpid())
        record = encode_measurement(campaign.simulate(spec))
    return {"record": record, "telemetry": session.worker_payload()}


class CampaignExecutor:
    """Runs batches of :class:`RunSpec` for one campaign.

    Resolution order per spec: in-memory memo → persistent cache →
    simulation (fanned out over processes when ``jobs > 1``).  Results
    are returned in input order and every simulated run is persisted.

    Parameters
    ----------
    campaign:
        The owning campaign (supplies config, window, seed and the
        serial simulation primitive).
    jobs:
        Worker processes for cache-miss simulation.  ``1`` = serial
        in-process; ``None`` = :func:`default_jobs` (``$REPRO_JOBS``).
    cache:
        Persistent result cache, or ``None`` to keep runs process-local.
    """

    def __init__(
        self,
        campaign: MeasurementCampaign,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self._campaign = campaign
        self._jobs = int(jobs)
        self._seed = seed_fingerprint(campaign.seed)
        # A stateful Generator seed has no stable identity: no persistent
        # cache entries could ever be valid and workers could not re-derive
        # the stream, so degrade to serial, uncached execution.
        self._cache = cache if self._seed is not None else None
        self._fingerprint = config_fingerprint(
            campaign.config, campaign.chip.n_cores
        )
        self._memory: Dict[RunSpec, RunMeasurement] = {}
        self.stats = ExecutorStats()

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    def key_for(self, spec: RunSpec) -> Optional[str]:
        """Persistent-cache key for one spec (``None`` if uncacheable)."""
        if self._seed is None:
            return None
        return cache_key(
            spec, self._fingerprint, self._campaign.n_cycles, self._seed
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunMeasurement:
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[RunSpec]) -> List[RunMeasurement]:
        """Measure every spec, reusing memo/cache, in input order."""
        with obs.span("campaign.batch", runs=len(specs)):
            return self._run_many_impl(specs)

    def _run_many_impl(
        self, specs: Sequence[RunSpec]
    ) -> List[RunMeasurement]:
        started = obs.monotonic_seconds()
        batch = ExecutorStats()
        results: Dict[RunSpec, RunMeasurement] = {}
        missing: List[RunSpec] = []
        seen: set = set()
        for spec in specs:
            if spec in seen:
                continue
            seen.add(spec)
            memo = self._memory.get(spec)
            if memo is not None:
                batch.memory_hits += 1
                results[spec] = memo
                continue
            cached = self._load_cached(spec, batch)
            if cached is not None:
                results[spec] = self._remember(spec, cached, batch)
            else:
                missing.append(spec)
        if missing:
            for spec, measurement in self._simulate_missing(missing, batch):
                results[spec] = self._remember(
                    spec, measurement, batch, store=True
                )
        batch.wall_seconds = obs.monotonic_seconds() - started
        batch.merged_into(self.stats)
        batch.merged_into(_GLOBAL_STATS)
        ordered = [results[spec] for spec in specs]
        if obs.enabled():
            _record_batch_telemetry(ordered, batch)
        return ordered

    def _load_cached(
        self, spec: RunSpec, batch: ExecutorStats
    ) -> Optional[RunMeasurement]:
        if self._cache is None:
            return None
        key = self.key_for(spec)
        assert key is not None
        corrupt_before = self._cache.stats.corrupt
        measurement = self._cache.load(key)
        if measurement is None:
            batch.cache.misses += 1
            batch.cache.corrupt += self._cache.stats.corrupt - corrupt_before
            return None
        batch.cache.hits += 1
        return measurement

    def _remember(
        self,
        spec: RunSpec,
        measurement: RunMeasurement,
        batch: ExecutorStats,
        store: bool = False,
    ) -> RunMeasurement:
        self._memory[spec] = measurement
        if store and self._cache is not None:
            key = self.key_for(spec)
            assert key is not None
            self._cache.store(key, measurement)
            batch.cache.stores += 1
        return measurement

    def _simulate_missing(
        self, specs: List[RunSpec], batch: ExecutorStats
    ) -> List[Tuple[RunSpec, RunMeasurement]]:
        batch.simulated += len(specs)
        if self._jobs > 1 and len(specs) > 1 and self._seed is not None:
            return self._simulate_parallel(specs, batch)
        return [(spec, self._campaign.simulate(spec)) for spec in specs]

    def _simulate_parallel(
        self, specs: List[RunSpec], batch: ExecutorStats
    ) -> List[Tuple[RunSpec, RunMeasurement]]:
        batch.parallel_batches += 1
        assert self._seed is not None
        config = self._campaign.config
        n_cycles = self._campaign.n_cycles
        fields = [(s.kind, s.workloads, s.config) for s in specs]
        workers = min(self._jobs, len(specs))
        telemetry = obs.enabled()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            payloads = list(
                pool.map(
                    _simulate_record,
                    [config] * len(specs),
                    [n_cycles] * len(specs),
                    [self._seed] * len(specs),
                    fields,
                    [telemetry] * len(specs),
                )
            )
        records = (
            _absorb_worker_payloads(payloads) if telemetry else payloads
        )
        return [
            (spec, decode_measurement(record))
            for spec, record in zip(specs, records)
        ]


def _describe_cache(cache: Optional[ResultCache]) -> str:
    if cache is None:
        return "disabled"
    return str(cache.directory)


def format_stats(
    stats: ExecutorStats, cache: Optional[ResultCache] = None
) -> str:
    """One-line execution summary for CLI / report output."""
    return f"[executor] {stats.summary()} (cache dir: {_describe_cache(cache)})"
