"""Unit tests for interference experiments (Figs. 12, 13, 16)."""

import numpy as np
import pytest

from repro.core.interference import (
    event_interference_matrix,
    idle_baseline_pkpk,
    single_core_event_swings,
    sliding_window_experiment,
)
from repro.errors import ConfigurationError
from repro.uarch.chip import Chip
from repro.uarch.events import StallEvent
from repro.workloads.spec import spec_benchmark

N = 20_000
REPEATS = 2


@pytest.fixture(scope="module")
def chip():
    return Chip("Proc100", with_ripple=True)


@pytest.fixture(scope="module")
def singles(chip):
    return single_core_event_swings(chip, n_cycles=N, repeats=REPEATS)


@pytest.fixture(scope="module")
def matrix(chip):
    return event_interference_matrix(chip, n_cycles=N, repeats=REPEATS)


class TestSingleCoreSwings:
    def test_all_events_above_idle(self, singles):
        assert all(value > 1.0 for value in singles.values())

    def test_branch_mispredict_largest(self, singles):
        br = singles[StallEvent.BRANCH_MISPREDICT]
        assert br >= 0.95 * max(singles.values())

    def test_l1_mildest(self, singles):
        assert singles[StallEvent.L1_MISS] == min(singles.values())


class TestInterferenceMatrix:
    def test_shape_and_axes(self, matrix):
        grid, events = matrix
        assert grid.shape == (5, 5)
        assert tuple(events) == tuple(StallEvent)

    def test_roughly_symmetric(self, matrix):
        grid, _ = matrix
        assert np.abs(grid - grid.T).max() < 0.6

    def test_max_pair_involves_exception(self, matrix):
        grid, events = matrix
        i, j = np.unravel_index(np.argmax(grid), grid.shape)
        assert StallEvent.EXCEPTION in (events[i], events[j])

    def test_dual_core_worse_than_single(self, matrix, singles):
        grid, _ = matrix
        assert grid.max() > max(singles.values())

    def test_idle_baseline_positive(self, chip):
        assert idle_baseline_pkpk(chip, n_cycles=N, repeats=REPEATS) > 0


class TestSlidingWindow:
    def test_result_structure(self):
        chip = Chip("Proc3", with_ripple=True)
        astar = spec_benchmark("astar")
        result = sliding_window_experiment(
            astar, astar, chip,
            interval_seconds=120.0, window_cycles=10_000,
            max_intervals=6, seed=1,
        )
        assert result.offsets_s.size == 6
        assert result.droops_per_1k.shape == (6,)
        assert result.single_core_droops_per_1k.shape == (6,)
        # Co-scheduling two copies never produces *less* noise than the
        # quietest single-core interval by a large factor.
        assert result.droops_per_1k.min() >= 0

    def test_offsets_classified(self):
        chip = Chip("Proc3", with_ripple=True)
        astar = spec_benchmark("astar")
        result = sliding_window_experiment(
            astar, astar, chip,
            interval_seconds=120.0, window_cycles=10_000,
            max_intervals=6, seed=1,
        )
        constructive = result.constructive_offsets(threshold_ratio=1.0)
        destructive = result.destructive_offsets(threshold_ratio=10.0)
        assert constructive.size + destructive.size >= 6

    def test_validation(self):
        chip = Chip("Proc3", with_ripple=False)
        astar = spec_benchmark("astar")
        with pytest.raises(ConfigurationError):
            sliding_window_experiment(
                astar, astar, chip, interval_seconds=0
            )
