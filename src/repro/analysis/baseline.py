"""Baseline files: grandfathered findings that do not fail the build.

A baseline is a committed JSON file listing findings that existed when a
rule was introduced.  Matching is by ``(path, code, fingerprint)`` — the
fingerprint hashes the offending line's *text*, so baselined findings
survive edits elsewhere in the file but expire the moment the offending
line itself changes.  Expired entries are dead weight; ``repro-lint
--prune-baseline`` rewrites the file without them.

Every entry may carry a ``justification`` string saying *why* the
finding is accepted rather than fixed; ``repro-lint
--require-justification`` turns a missing one into a failure, which is
how CI keeps the PERF baseline honest.  The shipped
``simlint-baseline.json`` grandfathers the ``OBS001`` wall-clock
comparison in ``examples/parallel_sweep.py`` (the speedup measurement
is the point of that example) plus the justified PERF worklist —
ROADMAP item 2's vectorization targets — and the test suite pins it to
exactly that.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.findings import Finding

#: Default baseline filename, looked up in the current directory.
DEFAULT_BASELINE = "simlint-baseline.json"

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """An accepted set of ``(path, code, fingerprint)`` identities.

    ``items`` keeps the raw JSON entries (messages, justifications) so
    pruning can rewrite the file without losing annotations; baselines
    built in memory via :meth:`from_findings` have no items.
    """

    entries: frozenset
    items: Tuple[Dict[str, Any], ...] = ()

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=frozenset())

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(
            entries=frozenset(
                (f.path, f.code, f.fingerprint) for f in findings
            )
        )

    def __contains__(self, finding: Finding) -> bool:
        key: Tuple[str, str, str] = (
            finding.path,
            finding.code,
            finding.fingerprint,
        )
        return key in self.entries

    def filter(self, findings: Sequence[Finding]) -> List[Finding]:
        """Findings not covered by this baseline."""
        return [f for f in findings if f not in self]

    def prune(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
        """Split :attr:`items` into ``(kept, removed)`` against findings.

        An entry is stale — removed — when no current finding matches
        its ``(path, code, fingerprint)``: the offending line was fixed,
        moved files, or changed enough to expire the fingerprint.
        """
        live = {(f.path, f.code, f.fingerprint) for f in findings}
        kept: List[Dict[str, Any]] = []
        removed: List[Dict[str, Any]] = []
        for item in self.items:
            key = (item["path"], item["code"], item["fingerprint"])
            (kept if key in live else removed).append(item)
        return kept, removed

    def unjustified(self) -> List[Dict[str, Any]]:
        """Entries with no (or a blank) ``justification`` string."""
        return [
            item for item in self.items
            if not str(item.get("justification", "")).strip()
        ]


def load(path: str) -> Baseline:
    """Load a baseline file (raises ``ValueError`` on a bad format)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path} is not a simlint baseline file")
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path} has baseline version {version!r}; "
            f"this simlint reads version {_FORMAT_VERSION}"
        )
    entries = set()
    for item in payload["findings"]:
        entries.add((item["path"], item["code"], item["fingerprint"]))
    return Baseline(
        entries=frozenset(entries), items=tuple(payload["findings"])
    )


def save_items(path: str, items: Sequence[Dict[str, Any]]) -> None:
    """Write raw baseline entries (sorted, stable output)."""
    ordered = sorted(
        items,
        key=lambda item: (item["path"], str(item["line"]), item["code"]),
    )
    payload = {"version": _FORMAT_VERSION, "findings": list(ordered)}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def save(
    path: str,
    findings: Sequence[Finding],
    justifications: Optional[Mapping[str, str]] = None,
) -> None:
    """Write ``findings`` as the new baseline (sorted, stable output).

    ``justifications`` maps finding fingerprints to the reason each one
    is accepted rather than fixed; entries without one omit the key.
    """
    reasons = justifications or {}
    items: List[Dict[str, Any]] = []
    for f in findings:
        item: Dict[str, Any] = {
            "path": f.path,
            "code": f.code,
            "line": f.line,
            "message": f.message,
            "fingerprint": f.fingerprint,
        }
        if f.fingerprint in reasons:
            item["justification"] = reasons[f.fingerprint]
        items.append(item)
    save_items(path, items)


def discover(explicit: str | None) -> Tuple[Baseline, str | None]:
    """Resolve the baseline to use.

    ``explicit`` wins (and must exist); otherwise ``simlint-baseline.json``
    in the current directory is used when present; otherwise the empty
    baseline.
    """
    if explicit is not None:
        return load(explicit), explicit
    if os.path.isfile(DEFAULT_BASELINE):
        return load(DEFAULT_BASELINE), DEFAULT_BASELINE
    return Baseline.empty(), None
