"""docs/observability.md's metric tables must match the live CATALOG.

The catalog is the single source of truth (`repro.observability.CATALOG`);
this gate fails whenever a metric is added, removed, re-kinded, re-united
or re-described without updating the documentation tables.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Tuple

from repro.observability import CATALOG

DOC_PATH = Path(__file__).resolve().parents[2] / "docs" / "observability.md"

#: ``| `name` | kind | unit | meaning |`` rows in the two catalog tables.
_ROW = re.compile(
    r"^\| `(?P<name>repro_[a-z0-9_]+)` \| (?P<kind>\w+) \| "
    r"(?P<unit>[^|]+) \| (?P<help>.+) \|$"
)


def documented_metrics() -> Dict[str, Tuple[str, str, str, bool]]:
    """``name -> (kind, unit, help, deterministic)`` from the doc tables."""
    rows: Dict[str, Tuple[str, str, str, bool]] = {}
    deterministic = True
    for line in DOC_PATH.read_text(encoding="utf-8").splitlines():
        if line.startswith("### Content metrics"):
            deterministic = True
        elif line.startswith("### Runtime metrics"):
            deterministic = False
        match = _ROW.match(line)
        if match:
            rows[match["name"]] = (
                match["kind"],
                match["unit"].strip(),
                match["help"].strip(),
                deterministic,
            )
    return rows


def test_every_catalog_metric_documented():
    assert set(documented_metrics()) == set(CATALOG)


def test_documented_rows_match_declarations():
    for name, (kind, unit, help_text, deterministic) in (
        documented_metrics().items()
    ):
        spec = CATALOG[name]
        assert kind == spec.kind, name
        assert unit == spec.unit, name
        assert deterministic == spec.deterministic, name
        documented = " ".join(help_text.replace("`", "").split())
        declared = " ".join(spec.help.replace("`", "").split())
        assert documented == declared, name
