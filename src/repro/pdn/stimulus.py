"""Canonical current stimuli used by the paper's characterization steps.

Three stimuli matter for the reproduction:

* a **current step** — the basic dI/dt event from which droop magnitudes
  are understood;
* the **reset stimulus** of Fig. 5(m–r) — power-cycling the processor from
  idle produces the sharpest current edge available, which is what exposes
  the decap-removal effect across Proc100 … Proc0;
* the **square-wave current loop** of Sec. II-A — a software loop
  alternating between high- and low-current instruction sequences, swept in
  frequency to reconstruct the platform's impedance profile (Fig. 4a),
  replacing Intel's VTT step-current generator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def current_step(
    n_samples: int,
    low_amps: float,
    high_amps: float,
    step_at: int,
    ramp_samples: int = 1,
) -> np.ndarray:
    """A single low→high current transition.

    Parameters
    ----------
    n_samples:
        Total trace length.
    low_amps / high_amps:
        Current levels before and after the step.
    step_at:
        Sample index where the transition begins.
    ramp_samples:
        Number of samples over which the current ramps linearly; 1 means an
        instantaneous (one-sample) edge, larger values soften the dI/dt.
    """
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    if not 0 <= step_at < n_samples:
        raise ConfigurationError("step_at must lie inside the trace")
    if ramp_samples < 1:
        raise ConfigurationError("ramp_samples must be >= 1")
    trace = np.full(n_samples, float(low_amps))
    ramp_end = min(step_at + ramp_samples, n_samples)
    ramp = np.linspace(low_amps, high_amps, ramp_end - step_at, endpoint=False)
    trace[step_at:ramp_end] = ramp
    trace[ramp_end:] = high_amps
    return trace


def reset_stimulus(
    n_samples: int,
    idle_amps: float,
    inrush_amps: float,
    reset_at: int,
    off_samples: int,
    ramp_samples: int = 4,
    settle_tau_samples: float = 4000.0,
) -> np.ndarray:
    """The power-cycle ("reset") stimulus of Fig. 5.

    The machine idles, current collapses to (near) zero while the reset is
    asserted, then an inrush surge refills the pipeline and caches as the
    machine comes back.  The falling and rising edges are the largest dI/dt
    events a production system ever sees, which is why the paper uses reset
    to compare droop magnitude across decap configurations.

    Parameters
    ----------
    idle_amps:
        Idle-loop current before and (eventually) after the reset.
    inrush_amps:
        Peak inrush current when the machine powers back up.
    reset_at:
        Sample index where the reset is asserted.
    off_samples:
        How long current stays collapsed.
    ramp_samples:
        Edge sharpness of the collapse and the inrush.
    settle_tau_samples:
        Time constant of the inrush decay back to idle.  Boot activity
        tapers over micro- not nanoseconds, so the default is thousands of
        clock cycles; this sustained surge is what rings the mid-frequency
        (package) resonance that decap removal exposes.
    """
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    if not 0 <= reset_at < n_samples:
        raise ConfigurationError("reset_at must lie inside the trace")
    if off_samples <= 0:
        raise ConfigurationError("off_samples must be positive")
    trace = np.full(n_samples, float(idle_amps))

    fall_end = min(reset_at + ramp_samples, n_samples)
    trace[reset_at:fall_end] = np.linspace(
        idle_amps, 0.0, fall_end - reset_at, endpoint=False
    )
    off_end = min(fall_end + off_samples, n_samples)
    trace[fall_end:off_end] = 0.0

    rise_end = min(off_end + ramp_samples, n_samples)
    trace[off_end:rise_end] = np.linspace(
        0.0, inrush_amps, rise_end - off_end, endpoint=False
    )
    # Inrush decays back to the idle level.
    if settle_tau_samples <= 0:
        raise ConfigurationError("settle_tau_samples must be positive")
    settle = n_samples - rise_end
    if settle > 0:
        decay = np.exp(-np.arange(settle) / settle_tau_samples)
        trace[rise_end:] = idle_amps + (inrush_amps - idle_amps) * decay
    return trace


def square_wave_current(
    n_samples: int,
    low_amps: float,
    high_amps: float,
    period_samples: int,
    duty: float = 0.5,
) -> np.ndarray:
    """The impedance-characterization loop of Sec. II-A.

    A software loop alternates between a high-current-draw and a
    low-current-draw instruction sequence; modulating how long it spends in
    each path sets the fundamental frequency of the resulting current
    square wave.  Sweeping that frequency and recording the voltage
    response reconstructs the impedance profile.
    """
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    if period_samples < 2:
        raise ConfigurationError("period_samples must be >= 2")
    if not 0 < duty < 1:
        raise ConfigurationError("duty must be in (0, 1)")
    phase = (np.arange(n_samples) % period_samples) / period_samples
    return np.where(phase < duty, float(high_amps), float(low_amps))
