"""Unit tests for report generation."""

import pytest

from repro.reporting import generate_report, render_report, run_experiments


@pytest.fixture(scope="module")
def small_results():
    return run_experiments(["fig01", "fig02"], quick=True)


class TestRunExperiments:
    def test_selected_subset(self, small_results):
        assert set(small_results) == {"fig01", "fig02"}
        assert small_results["fig01"].experiment_id == "Fig. 1"


class TestRenderReport:
    def test_contains_everything(self, small_results):
        text = render_report(small_results, quick=True, elapsed_seconds=1.5)
        assert "# Voltage Smoothing reproduction report" in text
        assert "quick" in text
        assert "Fig. 1" in text
        assert "Fig. 2" in text
        assert "note:" in text

    def test_full_flag_reflected(self, small_results):
        text = render_report(small_results, quick=False)
        assert "full" in text

    def test_execution_stats_section(self, small_results):
        from repro.measurement.executor import ExecutorStats

        stats = ExecutorStats()
        stats.cache.hits = 12
        stats.cache.misses = 3
        stats.cache.stores = 3
        stats.simulated = 3
        stats.wall_seconds = 1.25
        text = render_report(small_results, execution_stats=stats)
        assert "## Execution statistics" in text
        assert "12 hits / 3 misses" in text
        assert "3 runs simulated" in text
        assert "1.2 s" in text

    def test_warm_cache_called_out(self, small_results):
        from repro.measurement.executor import ExecutorStats

        stats = ExecutorStats()
        stats.cache.hits = 5
        text = render_report(small_results, execution_stats=stats)
        assert "zero\nre-simulations" in text or "zero re-simulations" in text

    def test_stats_section_absent_without_stats(self, small_results):
        assert "Execution statistics" not in render_report(small_results)


class TestWarmCacheReport:
    def test_warm_rerun_reports_zero_resimulations(self, tmp_path):
        """The acceptance check: a warm-cache replay of a campaign-backed
        figure serves everything from disk and says so in the report."""
        from repro.experiments import context

        context.configure_execution(cache_dir=str(tmp_path / "cache"))
        cold = generate_report(aliases=["fig15"], quick=True)
        assert "## Execution statistics" in cold
        assert "- simulation: 0 runs simulated" not in cold

        context.reset_campaigns()  # simulate a fresh process
        warm = generate_report(aliases=["fig15"], quick=True)
        assert "- simulation: 0 runs simulated" in warm
        assert "zero re-simulations" in warm


class TestGenerateReport:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "report.md"
        text = generate_report(
            path=str(path), aliases=["fig02"], quick=True
        )
        assert path.read_text(encoding="utf-8") == text
        assert "Fig. 2" in text

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        # Patch the experiment table down to a fast subset via reporting's
        # alias list is not exposed on the CLI; use a tiny direct call
        # instead and just exercise the command surface with fig aliases.
        path = tmp_path / "r.md"
        text = generate_report(path=str(path), aliases=["fig01"], quick=True)
        assert "Fig. 1" in text
