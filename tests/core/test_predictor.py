"""Unit tests for emergency prediction and throttling."""

import numpy as np
import pytest

from repro.core.predictor import (
    EmergencyPredictor,
    GuidedThrottleOutcome,
    ThrottleParameters,
    VoltageGuidedThrottle,
)
from repro.errors import ConfigurationError
from repro.uarch.chip import Chip


def burst_activity(n=4000, low=0.2, high=0.8, drop_at=1000, rise_at=1400):
    activity = np.full(n, high)
    activity[drop_at:rise_at] = low
    return activity


class TestThrottleParameters:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThrottleParameters(arm_drop=0)
        with pytest.raises(ConfigurationError):
            ThrottleParameters(drop_window=0)
        with pytest.raises(ConfigurationError):
            ThrottleParameters(slew_per_cycle=0)
        with pytest.raises(ConfigurationError):
            ThrottleParameters(hold_cycles=0)


class TestEmergencyPredictor:
    def test_flat_activity_untouched(self):
        predictor = EmergencyPredictor()
        activity = np.full(1000, 0.7)
        outcome = predictor.throttle(activity)
        assert np.array_equal(outcome.activity, activity)
        assert outcome.deferred_work == 0.0  # simlint: disable=HYG001 (exact by construction)
        assert outcome.engaged_fraction == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_refill_edge_is_slew_limited(self):
        predictor = EmergencyPredictor(
            ThrottleParameters(
                arm_drop=0.3, drop_window=20,
                slew_per_cycle=0.01, hold_cycles=400,
            )
        )
        activity = burst_activity()
        outcome = predictor.throttle(activity)
        # The rise edge is capped at the slew rate...
        rise = np.diff(outcome.activity[1395:1500])
        assert rise.max() <= 0.01 + 1e-12
        # ...and the deferred work is accounted for.
        assert outcome.deferred_work > 0
        assert outcome.engaged.any()

    def test_never_exceeds_original(self):
        predictor = EmergencyPredictor()
        rng = np.random.default_rng(0)
        activity = np.clip(0.6 + np.cumsum(rng.normal(0, 0.05, 3000)), 0, 1.3)
        outcome = predictor.throttle(activity)
        assert np.all(outcome.activity <= activity + 1e-12)

    def test_disarms_after_ramp_completes(self):
        predictor = EmergencyPredictor(
            ThrottleParameters(
                arm_drop=0.3, drop_window=20,
                slew_per_cycle=0.05, hold_cycles=100_000,
            )
        )
        activity = burst_activity()
        outcome = predictor.throttle(activity)
        # Once the ramp reaches the pre-drop level the throttle lets go:
        # the tail of the trace is untouched.
        assert np.array_equal(outcome.activity[-500:], activity[-500:])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EmergencyPredictor().throttle(np.array([]))


class TestVoltageGuidedThrottle:
    @pytest.fixture(scope="class")
    def chip(self):
        return Chip("Proc3", with_ripple=False, slack_coupling=0.0)

    def test_passthrough_matches_chip_voltage_shape(self, chip):
        """With an unreachable arm margin the co-simulation must agree
        with the vectorized simulator."""
        from repro.uarch.core import Core

        core = Core()
        activity = burst_activity(3000)
        other = np.full(3000, 5.0)
        throttle = VoltageGuidedThrottle(
            chip, arm_margin=0.5, slew_per_cycle=1.0, hold_cycles=1
        )
        outcome = throttle.run(activity, other)
        current = core.current_from_activity(activity) + other
        reference = chip.simulator.simulate(current, include_ripple=False)
        scale = np.abs(reference.samples - chip.nominal_voltage).max()
        assert np.abs(outcome.voltage - reference.samples).max() < 0.02 * scale

    def test_throttle_reduces_worst_droop(self, chip):
        activity = burst_activity(6000, low=0.1, high=1.0,
                                  drop_at=2000, rise_at=3500)
        other = np.full(6000, 8.0)
        raw = VoltageGuidedThrottle(
            chip, arm_margin=0.5, slew_per_cycle=1.0, hold_cycles=1
        ).run(activity, other)
        guided = VoltageGuidedThrottle(
            chip, arm_margin=0.012, slew_per_cycle=0.002, hold_cycles=150
        ).run(activity, other)
        assert guided.voltage.min() > raw.voltage.min()
        assert guided.engaged_fraction > 0

    def test_throughput_loss_bounded(self, chip):
        activity = burst_activity(4000)
        other = np.full(4000, 6.0)
        outcome = VoltageGuidedThrottle(chip).run(activity, other)
        assert 0 <= outcome.throughput_loss_fraction(activity) < 0.5

    def test_validation(self, chip):
        with pytest.raises(ConfigurationError):
            VoltageGuidedThrottle(chip, arm_margin=0)
        with pytest.raises(ConfigurationError):
            VoltageGuidedThrottle(chip).run(
                np.zeros(10), np.zeros(20)
            )
