"""Finding and severity primitives shared by the simlint engine.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` deliberately excludes the line *number* so
that baselined findings survive unrelated edits above them: two findings
match when they share the file, the rule code, and the text of the
offending line.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is; errors gate CI, warnings inform."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    column: int
    severity: Severity
    #: Stripped text of the offending source line (fingerprint material).
    source_line: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity that survives line-number churn."""
        material = "\x1f".join((self.path, self.code, self.source_line))
        return hashlib.sha1(material.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable representation (reporters and baselines)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": str(self.severity),
            "fingerprint": self.fingerprint,
        }

    def format(self) -> str:
        """Render as a classic ``path:line:col: CODE message`` line."""
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.code} [{self.severity}] {self.message}"
        )
