"""Exception hierarchy for the voltage-smoothing reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class SimulationError(ReproError):
    """A simulation could not be carried out (e.g. empty stimulus)."""


class CalibrationError(ReproError):
    """A calibration target could not be met or was queried before fitting."""


class WorkloadError(ReproError):
    """A workload definition is invalid or an unknown workload was requested."""


class MeasurementError(ReproError):
    """A measurement/analysis step received unusable data."""


class SchedulingError(ReproError):
    """The thread scheduler was given an infeasible job pool or policy."""
