"""Vmin-map structure, frontier extraction, and determinism properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.pdn import platform
from repro.undervolt import json_report

from tests.undervolt.conftest import (
    FREQUENCIES_GHZ,
    TINY_CYCLES,
    WORKLOADS,
    tiny_sweep,
)


class TestMapStructure:
    def test_full_grid_of_cells(self, vmin_map):
        assert len(vmin_map.cells) == (
            len(WORKLOADS) * len(FREQUENCIES_GHZ)
        )
        assert len(vmin_map.frontier) == len(FREQUENCIES_GHZ)

    def test_inputs_canonicalized(self, vmin_map):
        assert vmin_map.workloads == tuple(sorted(WORKLOADS))
        assert vmin_map.frequencies_ghz == tuple(sorted(FREQUENCIES_GHZ))
        assert vmin_map.core_counts == (2,)
        assert vmin_map.n_cycles == TINY_CYCLES

    def test_vmin_is_critical_plus_droop(self, vmin_map):
        for cell in vmin_map.cells:
            assert cell.vmin_volt == pytest.approx(
                cell.critical_volt + cell.droop_volt
            )
            assert cell.droop_volt > 0.0
            assert cell.guardband_fraction == pytest.approx(
                (platform.NOMINAL_VOLTAGE - cell.vmin_volt)
                / platform.NOMINAL_VOLTAGE
            )

    def test_droop_shared_across_frequencies(self, vmin_map):
        # The PDN is linear and current-driven: one measurement per
        # (workload, core-count) serves every frequency row.
        for workload in WORKLOADS:
            droops = {
                vmin_map.cell(workload, ghz, 2).droop_volt
                for ghz in FREQUENCIES_GHZ
            }
            assert len(droops) == 1

    def test_lower_frequency_lowers_vmin(self, vmin_map):
        for workload in WORKLOADS:
            low = vmin_map.cell(workload, 1.66, 2)
            high = vmin_map.cell(workload, 1.86, 2)
            assert low.vmin_volt < high.vmin_volt
            assert low.energy_savings_fraction > high.energy_savings_fraction

    def test_cell_lookup_miss_raises(self, vmin_map):
        with pytest.raises(KeyError):
            vmin_map.cell("povray", 1.86, 2)

    def test_frontier_is_worst_cell_per_operating_point(self, vmin_map):
        for point in vmin_map.frontier:
            column = [
                cell for cell in vmin_map.cells
                if cell.n_cores == point.n_cores
                and cell.frequency_ghz == point.frequency_ghz
            ]
            assert point.vmin_volt == max(c.vmin_volt for c in column)
            assert point.limiting_workload in {c.workload for c in column}

    def test_worst_point_has_highest_vmin(self, vmin_map):
        worst = vmin_map.worst_point()
        assert worst.vmin_volt == max(
            point.vmin_volt for point in vmin_map.frontier
        )


class TestValidation:
    def test_empty_workloads_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_sweep(workloads=())

    def test_blank_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_sweep(workloads=("lbm", "  "))

    def test_empty_frequencies_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_sweep(frequencies_ghz=())

    def test_bad_core_count_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_sweep(core_counts=(0,))


class TestDeterminism:
    def test_rerun_is_byte_identical(self, vmin_map):
        assert json_report(tiny_sweep()) == json_report(vmin_map)

    def test_duplicate_inputs_collapse(self, vmin_map):
        doubled = tiny_sweep(
            workloads=WORKLOADS + WORKLOADS,
            frequencies_ghz=FREQUENCIES_GHZ + FREQUENCIES_GHZ,
        )
        assert json_report(doubled) == json_report(vmin_map)

    @given(
        workload_order=st.permutations(list(WORKLOADS)),
        frequency_order=st.permutations(list(FREQUENCIES_GHZ)),
    )
    @settings(max_examples=8, deadline=None)
    def test_input_order_independence(
        self, vmin_map, workload_order, frequency_order
    ):
        shuffled = tiny_sweep(
            workloads=tuple(workload_order),
            frequencies_ghz=tuple(frequency_order),
        )
        assert json_report(shuffled) == json_report(vmin_map)

    @given(seed=st.integers(min_value=0, max_value=2))
    @settings(max_examples=6, deadline=None)
    def test_equal_seeds_bit_identical(self, seed):
        first = tiny_sweep(workloads=("lbm", "mcf"), seed=seed)
        second = tiny_sweep(workloads=("mcf", "lbm"), seed=seed)
        assert json_report(first) == json_report(second)
        assert first.seed == seed
