"""Bench: Fig. 14 — voltage-noise phases across full executions."""

from benchmarks.conftest import run_once
from repro.core.phases import count_phase_changes, oscillation_period_intervals
from repro.experiments import fig14_noise_phases


def test_fig14_noise_phases(benchmark, quick):
    result = run_once(benchmark, lambda: fig14_noise_phases.run(quick=quick))
    timelines = result.series["timelines"]
    sphinx = timelines["sphinx"]
    gamess = timelines["gamess"]
    tonto = timelines["tonto"]

    # sphinx: flat profile near the suite's high end, no phase structure.
    assert sphinx.span() < 0.6 * sphinx.mean_level()
    # gamess and tonto swing through phases much wider than sphinx's
    # sampling noise (relative to their own level).
    assert gamess.span() / gamess.mean_level() > sphinx.span() / sphinx.mean_level()
    assert tonto.span() / tonto.mean_level() > sphinx.span() / sphinx.mean_level()

    # gamess steps through multiple distinct phases.
    shift = max(gamess.span() * 0.35, 10.0)
    assert count_phase_changes(
        gamess.droops_per_1k, min_shift=shift, smooth=1
    ) >= 2

    # tonto oscillates: in full mode its repeating cycle is visible in
    # the autocorrelation. (Quick mode has too few intervals to resolve.)
    if not quick:
        period = oscillation_period_intervals(tonto.droops_per_1k)
        assert period is not None
    print("\n" + result.format_table())
