"""Known bug: unpicklable payload plus worker-side global accumulation.

A lambda cannot be pickled by ``ProcessPoolExecutor``, and the stats
dict mutated inside the worker lives in the *worker* process — the
parent's copy never changes, silently diverging from a serial run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List

_STATS: Dict[str, int] = {}


def record_margin(index: int) -> float:
    _STATS["records"] = _STATS.get("records", 0) + 1  # expect: CON003
    return float(index) * 0.5


def run(indices: List[int]) -> List[float]:
    with ProcessPoolExecutor() as pool:
        margins = list(pool.map(record_margin, indices))
        doubled = list(pool.map(lambda m: m * 2.0, margins))  # expect: CON002
    return margins + doubled
