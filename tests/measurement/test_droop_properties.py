"""Property-based tests of droop-excursion detection invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.measurement.droops import (
    detect_droops,
    detect_overshoots,
    droop_samples_per_1k,
)
from repro.pdn.simulate import VoltageTrace


def trace_from(deviations):
    return VoltageTrace(1.0 + np.asarray(deviations, dtype=float), 1e-9, 1.0)


deviation_arrays = st.lists(
    st.floats(min_value=-0.15, max_value=0.15),
    min_size=10,
    max_size=400,
).map(np.array)


class TestDetectorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(dev=deviation_arrays)
    def test_counts_monotone_in_margin(self, dev):
        """Deeper margins can only have fewer (or equal) events."""
        stats = detect_droops(trace_from(dev), threshold=0.02)
        margins = [0.02, 0.04, 0.08, 0.12]
        counts = [stats.events_deeper_than(m) for m in margins]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    @settings(max_examples=40, deadline=None)
    @given(dev=deviation_arrays)
    def test_depths_bounded_by_trace_extremes(self, dev):
        stats = detect_droops(trace_from(dev), threshold=0.02)
        if stats.count:
            assert stats.max_depth() <= -dev.min() + 1e-12
            assert stats.depths.min() > 0.02

    @settings(max_examples=40, deadline=None)
    @given(dev=deviation_arrays)
    def test_durations_sum_bounded_by_trace_length(self, dev):
        stats = detect_droops(trace_from(dev), threshold=0.02)
        assert stats.durations.sum() <= dev.size
        assert np.all(stats.durations >= 1) if stats.count else True

    @settings(max_examples=40, deadline=None)
    @given(dev=deviation_arrays)
    def test_droop_overshoot_duality(self, dev):
        """Detecting overshoots of -x equals detecting droops of x."""
        droops = detect_droops(trace_from(dev), threshold=0.02)
        mirrored = detect_overshoots(trace_from(-dev), threshold=0.02)
        assert droops.count == mirrored.count
        assert np.allclose(np.sort(droops.depths), np.sort(mirrored.depths))

    @settings(max_examples=25, deadline=None)
    @given(dev=deviation_arrays, gap=st.integers(min_value=20, max_value=100))
    def test_concatenation_with_quiet_gap_adds_counts(self, dev, gap):
        """Two traces joined by a long quiet gap have additive counts."""
        quiet = np.zeros(gap)
        joined = np.concatenate([dev, quiet, dev])
        a = detect_droops(trace_from(dev), threshold=0.02)
        joined_stats = detect_droops(trace_from(joined), threshold=0.02)
        # The quiet gap fully separates excursions, so counts double
        # (up to the open-ended excursion at the first trace's edge).
        assert abs(joined_stats.count - 2 * a.count) <= 1

    @settings(max_examples=25, deadline=None)
    @given(dev=deviation_arrays)
    def test_scaling_monotone_invariants(self, dev):
        """Amplifying deviations never shrinks depth or sample exposure.

        Note the event *count* is deliberately not asserted monotone:
        with hysteresis, amplification can lift an inter-droop sample
        above the exit level and merge two excursions into one (e.g.
        [-0.125, -0.0117, -0.125] * 1.5 with threshold 0.02).
        """
        small = detect_droops(trace_from(dev), threshold=0.02)
        big = detect_droops(trace_from(dev * 1.5), threshold=0.02)
        if small.count:
            assert big.count >= 1
            assert big.max_depth() >= small.max_depth()
        assert droop_samples_per_1k(
            trace_from(dev * 1.5), margin=0.02
        ) >= droop_samples_per_1k(trace_from(dev), margin=0.02)
