"""V/F and fault-rate models behind the undervolt sweep.

Two pieces of physics turn a measured droop profile into an
energy-efficiency frontier:

* **critical voltage vs frequency** — the alpha-power-law device model
  (the same one behind :mod:`repro.scaling.ring_oscillator`) anchored at
  the shipped operating point: the E6300-class part misses timing below
  :data:`~repro.pdn.undervolt.CRITICAL_VOLTAGE` at 1.86 GHz.  Lowering
  the clock lowers the voltage the critical path needs, which is where
  reclaimable guardband comes from (Papadimitriou et al.'s system-level
  V/F characterization, arXiv:2106.09975).
* **voltage → bit-error rate** — below the characterized Vmin the part
  does not fail on a clean line; SRAM cells start flipping bits with a
  probability that grows with undervolt depth ("Hardware Versus Software
  Fault Injection of Modern Undervolted SRAMs", arXiv:1912.00154).  The
  reproduction models the per-decision error probability as an
  exponential onset in depth, zero at and above Vmin.
"""

from __future__ import annotations

import math

from repro import units
from repro.errors import ConfigurationError
from repro.pdn import platform
from repro.pdn.undervolt import CRITICAL_VOLTAGE
from repro.scaling.ring_oscillator import DEFAULT_ALPHA

#: The shipped operating point the critical-voltage model is anchored at:
#: 1.86 GHz at the 1.118 V critical voltage (Sec. II-C).
SHIPPED_FREQUENCY_GHZ = platform.CLOCK_FREQUENCY_HZ / units.GIGA_HERTZ

#: Effective threshold voltage of the 65 nm-class critical path.  Sits
#: between the scaled-node thresholds of the Fig. 2 projection and the
#: 1.3 V nominal supply; with DEFAULT_ALPHA it reproduces the shipped
#: anchor point by construction (the model is calibrated, not assumed).
EFFECTIVE_THRESHOLD_VOLT = 0.45

#: Exponential onset scale of the SRAM bit-error curve: one decay
#: constant below Vmin lifts the per-decision error probability to
#: ``1 - 1/e``; modern undervolted SRAMs show this steep, super-linear
#: onset within a few tens of millivolts.
BER_DECAY_VOLT = 25 * units.MILLI_VOLT

#: Bisection ceiling for the critical-voltage inversion (volts) — far
#: above any set-point the sweep will ever request.
_SEARCH_CEILING_VOLT = 2.0 * platform.NOMINAL_VOLTAGE

#: Fixed bisection depth: 60 halvings of a ~2.6 V bracket resolve the
#: crossing to well below a nanovolt, so the result is bit-stable.
_BISECTION_STEPS = 60


def _alpha_power_frequency(supply_volt: float, alpha: float) -> float:
    """Relative critical-path frequency at ``supply_volt`` (a.u.).

    The alpha-power law: delay ∝ V / (V - Vth)^alpha, so attainable
    frequency ∝ (V - Vth)^alpha / V.  Strictly increasing in supply for
    ``alpha >= 1``.
    """
    headroom_volt = supply_volt - EFFECTIVE_THRESHOLD_VOLT
    if headroom_volt <= 0:
        return 0.0
    return headroom_volt**alpha / supply_volt


def critical_voltage(
    frequency_ghz: float, alpha: float = DEFAULT_ALPHA
) -> float:
    """Lowest supply (volts) closing timing at ``frequency_ghz``.

    Anchored so that ``critical_voltage(SHIPPED_FREQUENCY_GHZ)`` is
    exactly the measured :data:`~repro.pdn.undervolt.CRITICAL_VOLTAGE`;
    other frequencies scale along the alpha-power-law curve.  Raises
    :class:`~repro.errors.ConfigurationError` for non-positive
    frequencies or frequencies beyond what any supply below the search
    ceiling can sustain.
    """
    if frequency_ghz <= 0:
        raise ConfigurationError(
            f"frequency must be positive, got {frequency_ghz!r} GHz"
        )
    anchor = _alpha_power_frequency(CRITICAL_VOLTAGE, alpha)
    target = anchor * frequency_ghz / SHIPPED_FREQUENCY_GHZ
    low_volt = EFFECTIVE_THRESHOLD_VOLT + 1 * units.MILLI_VOLT
    high_volt = _SEARCH_CEILING_VOLT
    if _alpha_power_frequency(high_volt, alpha) < target:
        raise ConfigurationError(
            f"{frequency_ghz:g} GHz is unattainable below the "
            f"{high_volt:g} V search ceiling"
        )
    for _ in range(_BISECTION_STEPS):
        mid_volt = 0.5 * (low_volt + high_volt)
        if _alpha_power_frequency(mid_volt, alpha) < target:
            low_volt = mid_volt
        else:
            high_volt = mid_volt
    return high_volt


def undervolt_depth(set_point_volt: float, vmin_volt: float) -> float:
    """How far (volts) ``set_point_volt`` sits below the safe Vmin.

    Zero at and above Vmin — there is no "negative depth".
    """
    return max(0.0, vmin_volt - set_point_volt)


def bit_error_rate_at_depth(
    depth_volt: float, decay_volt: float = BER_DECAY_VOLT
) -> float:
    """Per-decision SRAM bit-error probability at ``depth_volt`` below Vmin.

    Exactly zero at zero depth, strictly positive below Vmin, monotone
    non-decreasing in depth, and saturating at 1: ``1 - exp(-d/decay)``.
    """
    if decay_volt <= 0:
        raise ConfigurationError("decay_volt must be positive")
    if depth_volt < 0:
        raise ConfigurationError(
            f"depth must be >= 0, got {depth_volt!r} V"
        )
    if depth_volt <= 0.0:  # exact zero: at/above Vmin the part is clean
        return 0.0
    return -math.expm1(-depth_volt / decay_volt)


def bit_error_rate(
    set_point_volt: float,
    vmin_volt: float,
    decay_volt: float = BER_DECAY_VOLT,
) -> float:
    """The voltage → bit-error-rate curve for one characterized cell.

    Zero at and above the cell's Vmin; below it, the exponential onset
    of :func:`bit_error_rate_at_depth`.
    """
    if vmin_volt <= 0:
        raise ConfigurationError(
            f"vmin must be positive, got {vmin_volt!r} V"
        )
    return bit_error_rate_at_depth(
        undervolt_depth(set_point_volt, vmin_volt), decay_volt
    )


def energy_savings_fraction(
    set_point_volt: float, nominal_volt: float = platform.NOMINAL_VOLTAGE
) -> float:
    """Dynamic-energy savings of running at ``set_point_volt``.

    The squared-set-point proxy the arena scorecards already use:
    dynamic energy scales with the square of supply, so a reduced
    guardband saves ``1 - (V/Vnom)^2``.  Negative when the set-point
    exceeds nominal (the cell needs *over*-volting at that frequency).
    """
    if nominal_volt <= 0:
        raise ConfigurationError("nominal_volt must be positive")
    return 1.0 - (set_point_volt / nominal_volt) ** 2
