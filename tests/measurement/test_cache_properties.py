"""Property-based tests (hypothesis) for the cache layer.

Three invariants the persistent cache must never break:

1. **key stability** — the cache key is a pure function of the key
   *contents*; dict insertion order of the config fingerprint must not
   matter (it is what makes keys portable across processes);
2. **lossless records** — every field of a synthetic
   :class:`RunMeasurement` survives encode → JSON → decode bit-exactly;
3. **corruption tolerance** — an arbitrarily truncated or byte-flipped
   cache entry is a miss (followed by transparent re-simulation), never
   an exception.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.measurement.cache import ResultCache, cache_key
from repro.measurement.campaign import (
    HISTOGRAM_BINS,
    HISTOGRAM_HI,
    HISTOGRAM_LO,
    MeasurementCampaign,
    RunMeasurement,
    RunSpec,
)
from repro.measurement.droops import DroopStatistics
from repro.measurement.histogram import CompressedHistogram
from repro.measurement.record import (
    decode_measurement,
    encode_measurement,
    measurements_identical,
)
from repro.uarch.counters import PerformanceCounters
from repro.uarch.events import StallEvent

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=12
)

specs = st.builds(
    RunSpec,
    kind=st.sampled_from(["single", "multithread", "multiprogram"]),
    workloads=st.lists(names, min_size=1, max_size=2).map(tuple),
    config=st.sampled_from(["Proc100", "Proc25", "Proc3"]),
)

fingerprint_items = st.dictionaries(
    keys=names,
    values=st.one_of(
        st.integers(min_value=-(2**31), max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.booleans(),
        names,
    ),
    min_size=1,
    max_size=6,
)

finite_floats = st.floats(
    min_value=0.0, max_value=0.5, allow_nan=False, allow_infinity=False
)


@st.composite
def counters(draw):
    cycles = draw(st.integers(min_value=1, max_value=10**7))
    return PerformanceCounters(
        cycles=cycles,
        instructions=draw(
            st.floats(min_value=0.0, max_value=5e7, allow_nan=False)
        ),
        stall_cycles=draw(st.integers(min_value=0, max_value=cycles)),
        event_counts=draw(
            st.dictionaries(
                keys=st.sampled_from(list(StallEvent)),
                values=st.integers(min_value=0, max_value=10**6),
                max_size=len(StallEvent),
            )
        ),
    )


@st.composite
def droop_stats(draw, n_cycles):
    count = draw(st.integers(min_value=0, max_value=8))
    depths = draw(
        st.lists(finite_floats, min_size=count, max_size=count)
    )
    durations = draw(
        st.lists(
            st.integers(min_value=1, max_value=n_cycles),
            min_size=count,
            max_size=count,
        )
    )
    return DroopStatistics(
        depths=np.asarray(depths, dtype=float),
        durations=np.asarray(durations, dtype=int),
        n_cycles=n_cycles,
        threshold=draw(
            st.floats(min_value=0.001, max_value=0.05, allow_nan=False)
        ),
    )


@st.composite
def measurements(draw):
    n_cycles = draw(st.integers(min_value=1000, max_value=100_000))
    histogram = CompressedHistogram(HISTOGRAM_LO, HISTOGRAM_HI, HISTOGRAM_BINS)
    samples = draw(
        st.lists(
            st.floats(min_value=-0.3, max_value=0.3, allow_nan=False),
            max_size=50,
        )
    )
    histogram.add(np.asarray(samples))
    return RunMeasurement(
        spec=draw(specs),
        n_cycles=n_cycles,
        counters=tuple(
            draw(st.lists(counters(), min_size=1, max_size=2))
        ),
        droops=draw(droop_stats(n_cycles)),
        overshoots=draw(droop_stats(n_cycles)),
        histogram=histogram,
        droop_samples_per_1k=draw(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
        ),
    )


# ---------------------------------------------------------------------------
# 1. Key stability
# ---------------------------------------------------------------------------


class TestKeyStability:
    @settings(max_examples=60, deadline=None)
    @given(
        spec=specs,
        fingerprint=fingerprint_items,
        n_cycles=st.integers(min_value=1000, max_value=10**6),
        seed=st.integers(min_value=0, max_value=2**62),
        shuffle=st.randoms(use_true_random=False),
    )
    def test_key_independent_of_dict_order(
        self, spec, fingerprint, n_cycles, seed, shuffle
    ):
        items = list(fingerprint.items())
        shuffle.shuffle(items)
        reordered = dict(items)
        assert cache_key(spec, fingerprint, n_cycles, seed) == cache_key(
            spec, reordered, n_cycles, seed
        )

    @settings(max_examples=60, deadline=None)
    @given(
        spec=specs,
        fingerprint=fingerprint_items,
        n_cycles=st.integers(min_value=1000, max_value=10**6),
        seed=st.integers(min_value=0, max_value=2**62),
    )
    def test_key_changes_with_seed(self, spec, fingerprint, n_cycles, seed):
        assert cache_key(spec, fingerprint, n_cycles, seed) != cache_key(
            spec, fingerprint, n_cycles, seed + 1
        )


# ---------------------------------------------------------------------------
# 2. Lossless records
# ---------------------------------------------------------------------------


class TestRecordRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(measurement=measurements())
    def test_every_field_round_trips(self, measurement):
        decoded = decode_measurement(encode_measurement(measurement))
        assert measurements_identical(measurement, decoded)

    @settings(max_examples=60, deadline=None)
    @given(measurement=measurements())
    def test_round_trip_through_disk(self, measurement, tmp_path_factory):
        cache = ResultCache(tmp_path_factory.mktemp("prop-cache"))
        cache.store("0" * 64, measurement)
        loaded = cache.load("0" * 64)
        assert loaded is not None
        assert measurements_identical(measurement, loaded)


# ---------------------------------------------------------------------------
# 3. Corruption tolerance
# ---------------------------------------------------------------------------


class TestCorruptionFallback:
    @settings(max_examples=40, deadline=None)
    @given(
        cut=st.integers(min_value=0, max_value=200),
        data=st.data(),
    )
    def test_truncated_entries_never_raise(
        self, cut, data, tmp_path_factory
    ):
        cache = ResultCache(tmp_path_factory.mktemp("trunc-cache"))
        campaign = MeasurementCampaign(
            "Proc100", n_cycles=1000, seed=0, jobs=1
        )
        measurement = campaign.measure("mcf")
        key = "a" * 64
        cache.store(key, measurement)
        path = cache.path_for(key)
        raw = path.read_bytes()
        path.write_bytes(raw[: min(cut, len(raw))])
        assert cache.load(key) is None

    @settings(max_examples=40, deadline=None)
    @given(
        position=st.integers(min_value=0, max_value=10**6),
        replacement=st.integers(min_value=0, max_value=255),
    )
    def test_flipped_bytes_never_raise(
        self, position, replacement, tmp_path_factory
    ):
        cache = ResultCache(tmp_path_factory.mktemp("flip-cache"))
        campaign = MeasurementCampaign(
            "Proc100", n_cycles=1000, seed=0, jobs=1
        )
        measurement = campaign.measure("mcf")
        key = "b" * 64
        cache.store(key, measurement)
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[position % len(raw)] = replacement
        path.write_bytes(bytes(raw))
        loaded = cache.load(key)  # must not raise
        # Either the flip landed somewhere harmless (checksummed gzip
        # usually catches it) or the entry is treated as a miss.
        assert loaded is None or measurements_identical(loaded, measurement)

    def test_corrupt_entry_falls_back_to_resimulation(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = MeasurementCampaign(
            "Proc100", n_cycles=1000, seed=0,
            jobs=1, cache=ResultCache(cache_dir),
        )
        expected = cold.measure("mcf")
        key = cold.executor.key_for(cold.run_spec("mcf"))
        path = cold.executor.cache.path_for(key)
        path.write_bytes(b"\x00" * 16)

        warm = MeasurementCampaign(
            "Proc100", n_cycles=1000, seed=0,
            jobs=1, cache=ResultCache(cache_dir),
        )
        measurement = warm.measure("mcf")
        assert warm.executor.stats.cache.corrupt == 1
        assert warm.executor.stats.simulated == 1
        assert measurements_identical(measurement, expected)
        # The repaired entry replaced the corrupt one on disk.
        assert warm.executor.cache.load(key) is not None
