"""Unit tests for the spectrum module — and band-placement physics checks."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement.spectrum import (
    BANDS,
    power_spectrum,
    voltage_spectrum,
)
from repro.pdn.platform import CLOCK_PERIOD_S


class TestPowerSpectrum:
    def test_recovers_sine_frequency(self):
        fs = 1e9
        t = np.arange(65536) / fs
        series = np.sin(2 * np.pi * 5e6 * t)
        spectrum = power_spectrum(series, 1.0 / fs)
        assert spectrum.dominant_frequency_hz(1e6, 1e8) == pytest.approx(
            5e6, rel=0.05
        )

    def test_band_power_captures_tone(self):
        fs = 1e9
        t = np.arange(65536) / fs
        series = np.sin(2 * np.pi * 5e6 * t) + 0.1 * np.sin(2 * np.pi * 2e8 * t)
        spectrum = power_spectrum(series, 1.0 / fs)
        strong = spectrum.band_power(4e6, 6e6)
        weak = spectrum.band_power(1.5e8, 2.5e8)
        assert strong > weak

    def test_band_powers_named(self):
        rng = np.random.default_rng(0)
        spectrum = power_spectrum(rng.normal(0, 1, 32768), 5e-10)
        powers = spectrum.band_powers()
        assert set(powers) == set(BANDS)
        assert all(v >= 0 for v in powers.values())

    def test_validation(self):
        with pytest.raises(MeasurementError):
            power_spectrum(np.zeros(10), 1e-9)
        with pytest.raises(MeasurementError):
            power_spectrum(np.zeros(100), 0.0)
        spectrum = power_spectrum(np.random.default_rng(1).normal(0, 1, 1024), 1e-9)
        with pytest.raises(MeasurementError):
            spectrum.band_power(5, 4)


class TestBandPlacement:
    """The simulated stack must put energy where the paper's physics says."""

    def test_vrm_ripple_band_dominates_idle(self):
        from repro.uarch.chip import Chip
        from repro.workloads.microbenchmarks import IdleLoop

        chip = Chip("Proc100", with_ripple=True)
        idle = IdleLoop()
        run = chip.run(
            [idle.sample_window(60_000, rng=0), idle.sample_window(60_000, rng=1)],
            seed=0,
        )
        spectrum = voltage_spectrum(run.voltage)
        powers = spectrum.band_powers()
        assert powers["vrm-ripple"] > powers["package"]
        assert powers["vrm-ripple"] > powers["first-droop"]

    def test_bursty_workload_fills_package_band(self):
        from repro.uarch.chip import Chip
        from repro.workloads.microbenchmarks import IdleLoop
        from repro.workloads.spec import spec_benchmark

        chip = Chip("Proc3", with_ripple=False)
        idle = IdleLoop()
        busy = chip.run(
            [
                spec_benchmark("mcf").sample_window(60_000, rng=2),
                idle.sample_window(60_000, rng=3),
            ],
            seed=0,
        )
        quiet = chip.run(
            [idle.sample_window(60_000, rng=4), idle.sample_window(60_000, rng=5)],
            seed=0,
        )
        busy_pkg = voltage_spectrum(busy.voltage).band_power(*BANDS["package"])
        quiet_pkg = voltage_spectrum(quiet.voltage).band_power(*BANDS["package"])
        assert busy_pkg > 10 * max(quiet_pkg, 1e-18)

    def test_flush_kernel_excites_first_droop_band(self):
        from repro.uarch.chip import Chip
        from repro.uarch.events import StallEvent
        from repro.workloads.microbenchmarks import IdleLoop, microbenchmark_for

        chip = Chip("Proc100", with_ripple=False)
        idle = IdleLoop()
        br = microbenchmark_for(StallEvent.BRANCH_MISPREDICT)
        busy = chip.run(
            [br.sample_window(60_000, rng=6), idle.sample_window(60_000, rng=7)],
            seed=0,
        )
        quiet = chip.run(
            [idle.sample_window(60_000, rng=8), idle.sample_window(60_000, rng=9)],
            seed=0,
        )
        band = BANDS["first-droop"]
        assert voltage_spectrum(busy.voltage).band_power(*band) > 10 * max(
            voltage_spectrum(quiet.voltage).band_power(*band), 1e-20
        )
