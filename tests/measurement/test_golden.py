"""Golden regression tests: pinned small-window simulation outputs.

Each fixture in ``tests/measurement/golden/`` is the complete record of
one representative run (memory-bound, branchy, phased, multi-threaded,
and two pairing-sweep points).  A failure here means the simulation
pipeline's *numbers changed* — workloads, core model, PDN, droop
detection or histogramming drifted.  If the change is intentional,
regenerate with::

    PYTHONPATH=src python tests/measurement/golden/regenerate.py

and justify the drift in the commit message; the test failure message
lists exactly which fields moved.
"""

import json
import pathlib

import pytest

from repro.measurement.campaign import MeasurementCampaign, RunSpec
from repro.measurement.record import decode_measurement, diff_measurements

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))


def _load(path):
    fixture = json.loads(path.read_text(encoding="utf-8"))
    return fixture["campaign"], decode_measurement(fixture["record"])


class TestGoldenRuns:
    def test_fixture_inventory(self):
        """The battery covers the intended spread of behaviors (at least
        one memory-bound, branchy, phased, multi-threaded and pairing
        fixture must exist — see regenerate.py)."""
        stems = {p.stem for p in FIXTURES}
        assert len(FIXTURES) >= 6
        assert any("mcf" in s or "lbm" in s for s in stems)  # memory-bound
        assert any("sjeng" in s for s in stems)  # branchy
        assert any("tonto" in s for s in stems)  # phased
        assert any(s.startswith("multithread") for s in stems)
        assert any(s.startswith("multiprogram") for s in stems)

    @pytest.mark.parametrize(
        "path", FIXTURES, ids=[p.stem for p in FIXTURES]
    )
    def test_simulation_matches_golden(self, path):
        campaign_inputs, expected = _load(path)
        campaign = MeasurementCampaign(
            campaign_inputs["config"],
            n_cycles=campaign_inputs["n_cycles"],
            seed=campaign_inputs["seed"],
            jobs=1,
        )
        measured = campaign.simulate(expected.spec)
        diffs = diff_measurements(expected, measured)
        assert not diffs, (
            f"simulation output drifted from golden fixture {path.name}:\n"
            + "\n".join(f"  {d}" for d in diffs)
            + "\nIf this change is intentional, regenerate via "
            "`PYTHONPATH=src python tests/measurement/golden/regenerate.py` "
            "and explain the drift in the commit message."
        )

    @pytest.mark.parametrize(
        "path", FIXTURES, ids=[p.stem for p in FIXTURES]
    )
    def test_fixture_spec_consistent(self, path):
        """Fixture self-consistency: the embedded spec matches the file
        name, so a mislabeled regeneration cannot slip through."""
        _, expected = _load(path)
        assert isinstance(expected.spec, RunSpec)
        stem_parts = path.stem.split("-")
        assert stem_parts[0] == expected.spec.kind
        assert stem_parts[-1] == expected.spec.config
        for workload in expected.spec.workloads:
            assert workload in stem_parts
