"""Synthesis of per-cycle activity from baseline + stall events.

Each stall event stamps two envelopes onto the baseline activity series:

* a **multiplicative drop** — a drain ramp down to ``1 - drop_fraction``,
  a stalled plateau, and a refill ramp back to 1.  Overlapping drops
  multiply: two overlapping misses stall the core more deeply than either
  alone.
* an **additive surge** — once the stall resolves, the queued-up work
  issues in a saturating burst.  Crucially this burst reaches toward *full
  machine activity* regardless of how busy the program usually keeps the
  core, so it is modelled as an absolute addition of
  ``surge_factor - 1`` (decaying exponentially), not as a multiplier.
  These refill bursts are the paper's droop mechanism: "after the miss
  data becomes available, functional units become busy and there is a
  surge in current activity.  This steep increase in current causes
  voltage to droop."

The result is clipped to [0, ``MAX_ACTIVITY``].
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.events import EventProfile, StallEvent, profile_for

#: Activity ceiling: refill bursts may briefly exceed nominal full activity.
MAX_ACTIVITY = 1.35


def event_envelope(profile: EventProfile) -> Tuple[np.ndarray, np.ndarray]:
    """The (multiplicative-drop, additive-surge) envelopes of one event.

    Both arrays start at the event's first drain cycle; the drop array is
    1.0 and the surge array 0.0 outside the event's footprint.
    """
    drain = np.linspace(
        1.0, 1.0 - profile.drop_fraction, profile.drain_cycles + 1
    )[1:]
    plateau = np.full(profile.stall_cycles, 1.0 - profile.drop_fraction)
    refill = np.linspace(
        1.0 - profile.drop_fraction, 1.0, profile.refill_cycles + 1
    )[1:]
    drop = np.concatenate([drain, plateau, refill])

    tail_len = int(4 * profile.surge_decay_cycles)
    surge_peak = profile.surge_factor - 1.0
    ramp = np.linspace(0.0, surge_peak, profile.refill_cycles + 1)[1:]
    decay = surge_peak * np.exp(
        -np.arange(1, tail_len + 1) / profile.surge_decay_cycles
    )
    surge = np.concatenate([
        np.zeros(drain.size + plateau.size), ramp, decay,
    ])

    length = max(drop.size, surge.size)
    drop = np.pad(drop, (0, length - drop.size), constant_values=1.0)
    surge = np.pad(surge, (0, length - surge.size), constant_values=0.0)
    return drop, surge


def synthesize_activity(
    baseline: np.ndarray,
    events: Iterable[Tuple[int, StallEvent]],
) -> np.ndarray:
    """Apply stall-event envelopes to a baseline activity series.

    Parameters
    ----------
    baseline:
        Per-cycle activity in [0, 1].
    events:
        ``(cycle, event)`` pairs; events whose footprint extends past the
        end of the window are truncated.

    Returns
    -------
    numpy.ndarray
        Realized per-cycle activity in [0, ``MAX_ACTIVITY``].
    """
    baseline = np.asarray(baseline, dtype=float)
    if baseline.ndim != 1 or baseline.size == 0:
        raise ConfigurationError("baseline must be a non-empty 1-D array")
    drop_env = np.ones_like(baseline)
    surge_env = np.zeros_like(baseline)
    cached: Dict[StallEvent, Tuple[np.ndarray, np.ndarray]] = {}
    for cycle, event in events:
        if not 0 <= cycle < baseline.size:
            raise ConfigurationError(
                f"event at cycle {cycle} outside window of {baseline.size}"
            )
        shapes = cached.get(event)
        if shapes is None:
            shapes = event_envelope(profile_for(event))
            cached[event] = shapes
        drop, surge = shapes
        end = min(cycle + drop.size, baseline.size)
        span = end - cycle
        drop_env[cycle:end] *= drop[:span]
        surge_env[cycle:end] += surge[:span]
    # The surge is suppressed while the core is still (partially) stalled
    # by an overlapping event: scale it by the drop envelope.
    activity = baseline * drop_env + surge_env * drop_env
    return np.clip(activity, 0.0, MAX_ACTIVITY)
