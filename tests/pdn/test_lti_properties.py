"""Property-based tests of the PDN solver's LTI physics.

The transient simulator claims to implement a linear time-invariant
network.  These properties — superposition, scaling, time-invariance,
passivity — must hold for *any* stimulus, which is exactly what
hypothesis is for.  Violations would indicate discretization or state
initialization bugs that example-based tests can miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pdn.platform import build_simulator

N = 4000


@pytest.fixture(scope="module")
def simulator():
    return build_simulator("Proc100", with_ripple=False)


def _random_current(seed: int, n: int = N, base: float = 10.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    steps = rng.normal(0, 0.3, n)
    return np.clip(base + np.cumsum(steps), 1.0, 40.0)


current_seeds = st.integers(min_value=0, max_value=10_000)


class TestLTIProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed_a=current_seeds, seed_b=current_seeds)
    def test_superposition_of_deviations(self, simulator, seed_a, seed_b):
        """response(a) + response(b) - 2*DC == response(a + b - DC)."""
        base = 10.0
        a = _random_current(seed_a, base=base)
        b = _random_current(seed_b, base=base)
        combined = a + b - base  # keep the same DC operating point scale
        va = simulator.simulate(a, include_ripple=False).samples
        vb = simulator.simulate(b, include_ripple=False).samples
        vc = simulator.simulate(combined, include_ripple=False).samples
        nominal = simulator.network.nominal_voltage
        lhs = (va - nominal) + (vb - nominal)
        dc_correction = simulator.network.die_voltage_dc(base) - nominal
        rhs = (vc - nominal) + dc_correction
        scale = np.abs(rhs).max() + 1e-9
        assert np.abs(lhs - rhs).max() < 1e-6 + 1e-6 * scale

    @settings(max_examples=15, deadline=None)
    @given(seed=current_seeds, gain=st.floats(min_value=0.2, max_value=2.5))
    def test_homogeneity(self, simulator, seed, gain):
        """Scaling the current scales the deviation by the same factor."""
        current = _random_current(seed)
        v1 = simulator.simulate(current, include_ripple=False).samples
        v2 = simulator.simulate(gain * current, include_ripple=False).samples
        nominal = simulator.network.nominal_voltage
        dev1 = v1 - nominal
        dev2 = v2 - nominal
        scale = np.abs(dev2).max() + 1e-9
        assert np.abs(gain * dev1 - dev2).max() < 1e-6 + 1e-5 * scale

    @settings(max_examples=10, deadline=None)
    @given(seed=current_seeds, shift=st.integers(min_value=1, max_value=200))
    def test_time_invariance(self, simulator, seed, shift):
        """A delayed stimulus produces the same (delayed) response."""
        current = _random_current(seed, n=N)
        padded = np.concatenate([np.full(shift, current[0]), current])
        v_direct = simulator.simulate(current, include_ripple=False).samples
        v_shifted = simulator.simulate(padded, include_ripple=False).samples
        nominal = simulator.network.nominal_voltage
        scale = np.abs(v_direct - nominal).max() + 1e-9
        error = np.abs(v_shifted[shift:] - v_direct).max()
        assert error < 1e-6 + 1e-5 * scale

    @settings(max_examples=15, deadline=None)
    @given(seed=current_seeds)
    def test_bounded_response(self, simulator, seed):
        """A bounded stimulus never produces unbounded voltage (stability)."""
        current = _random_current(seed)
        trace = simulator.simulate(current, include_ripple=False)
        nominal = simulator.network.nominal_voltage
        # Deviations stay within a loose physical envelope: the stimulus
        # spans < 40 A; even fully resonant that is < 40 A * 20 mOhm.
        assert np.abs(trace.samples - nominal).max() < 40 * 0.02 + 0.05

    @settings(max_examples=10, deadline=None)
    @given(level=st.floats(min_value=1.0, max_value=40.0))
    def test_dc_fixed_point(self, simulator, level):
        """Constant current is a fixed point at the DC solution."""
        trace = simulator.simulate(
            np.full(2000, level), include_ripple=False
        )
        expected = simulator.network.die_voltage_dc(level)
        assert np.abs(trace.samples - expected).max() < 1e-6
