"""Shared, memoized measurement context for experiment harnesses.

Several figures draw on the same underlying campaigns (the Proc3 pairing
sweep feeds Figs. 17-19 and Tab. I; the Proc100/25/3 suites feed
Figs. 7-10).  Campaigns cache per-run measurements internally; this module
additionally caches the campaign objects themselves so harnesses and
benchmarks share work within a process.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.measurement.campaign import MeasurementCampaign

#: A reduced benchmark subset for quick experiment variants: spans the
#: suite's noise spectrum (memory-bound, branchy, phased, compute-dense).
QUICK_SPEC_SUBSET: Tuple[str, ...] = (
    "astar", "gamess", "lbm", "libquantum", "mcf",
    "namd", "povray", "sjeng", "sphinx", "tonto",
)

QUICK_PARSEC_SUBSET: Tuple[str, ...] = ("canneal", "streamcluster", "swaptions")

#: Window lengths for full vs quick protocols.
FULL_WINDOW_CYCLES = 40_000
QUICK_WINDOW_CYCLES = 25_000


@lru_cache(maxsize=8)
def get_campaign(
    config: str,
    n_cycles: int = FULL_WINDOW_CYCLES,
    seed: int = 0,
) -> MeasurementCampaign:
    """A process-wide shared campaign for one configuration."""
    return MeasurementCampaign(config, n_cycles=n_cycles, seed=seed)


def spec_names(quick: bool) -> Tuple[str, ...]:
    if quick:
        return QUICK_SPEC_SUBSET
    from repro.workloads.spec import SPEC_NAMES

    return SPEC_NAMES


def parsec_names(quick: bool) -> Tuple[str, ...]:
    if quick:
        return QUICK_PARSEC_SUBSET
    from repro.workloads.parsec import PARSEC

    return tuple(sorted(PARSEC))


def window_cycles(quick: bool) -> int:
    return QUICK_WINDOW_CYCLES if quick else FULL_WINDOW_CYCLES
