"""Fixture: CON-rule violations, analyzed via ``flow_paths`` as one project.

``# expect: CODE`` markers declare the exact finding set the dataflow
engine must produce for this file (see tests/analysis/test_flow.py).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List

import numpy as np

from repro.random_utils import as_generator

RESULT_LOG: List[int] = []


def fresh_entropy_worker(index: int) -> float:
    rng = np.random.default_rng()  # expect: CON001
    return float(rng.random()) + index  # expect: TNT002


def constant_seed_worker(index: int) -> float:
    rng = as_generator(1234)  # expect: CON001
    RESULT_LOG.append(index)  # expect: CON003
    return float(rng.random())  # expect: TNT002


def run_campaign(indices: List[int]) -> List[float]:
    with ProcessPoolExecutor() as pool:
        first = list(pool.map(fresh_entropy_worker, indices))
        second = list(pool.map(constant_seed_worker, indices))
        third = list(pool.map(lambda i: i * 2.0, indices))  # expect: CON002
    return first + second + third
