"""Unit tests for the split-supply chip variant."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.uarch.chip import Chip
from repro.uarch.split_supply import SplitSupplyChip
from repro.workloads.microbenchmarks import IdleLoop
from repro.workloads.spec import spec_benchmark

N = 20_000


@pytest.fixture(scope="module")
def split_chip():
    return SplitSupplyChip("Proc100", with_ripple=False)


class TestConstruction:
    def test_defaults(self, split_chip):
        assert split_chip.n_cores == 2
        assert split_chip.config_name == "Proc100"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SplitSupplyChip(n_cores=0)
        with pytest.raises(ConfigurationError):
            SplitSupplyChip(uncore_amps=-1)


class TestRun:
    def test_one_rail_per_core(self, split_chip):
        run = split_chip.run([
            spec_benchmark("mcf").sample_window(N, rng=1),
            spec_benchmark("namd").sample_window(N, rng=2),
        ])
        assert len(run.rails) == 2
        assert len(run.cores) == 2
        assert run.n_cycles == N

    def test_rails_are_independent(self, split_chip):
        """Only the busy core's rail sees that core's noise."""
        busy = spec_benchmark("mcf").sample_window(N, rng=3)
        idle = IdleLoop().sample_window(N, rng=4)
        run = split_chip.run([busy, idle])
        assert (
            run.rails[0].peak_to_peak_fraction()
            > 2 * run.rails[1].peak_to_peak_fraction()
        )

    def test_missing_window_idles_core(self, split_chip):
        run = split_chip.run([spec_benchmark("mcf").sample_window(N, rng=5)])
        assert run.cores[1].label == "(idle)"

    def test_worst_metrics_cover_both_rails(self, split_chip):
        run = split_chip.run([
            spec_benchmark("mcf").sample_window(N, rng=6),
            spec_benchmark("lbm").sample_window(N, rng=7),
        ])
        assert run.worst_droop_fraction() == max(
            r.max_droop_fraction() for r in run.rails
        )
        assert run.worst_peak_to_peak_fraction() == max(
            r.peak_to_peak_fraction() for r in run.rails
        )

    def test_validation(self, split_chip):
        with pytest.raises(SimulationError):
            split_chip.run([None, None])
        with pytest.raises(SimulationError):
            split_chip.run([
                spec_benchmark("mcf").sample_window(100, rng=1),
                spec_benchmark("mcf").sample_window(200, rng=2),
            ])


class TestPower6Comparison:
    def test_split_swings_exceed_connected(self):
        """The paper's footnote-3 claim (POWER6 split-vs-connected)."""
        connected = Chip("Proc100", with_ripple=False)
        split = SplitSupplyChip("Proc100", with_ripple=False)
        ratios = []
        for seed in range(3):
            wa = spec_benchmark("lbm").sample_window(N, rng=10 + seed)
            wb = spec_benchmark("namd").sample_window(N, rng=20 + seed)
            conn = connected.run([wa, wb]).voltage.peak_to_peak_fraction()
            spl = split.run([wa, wb]).worst_peak_to_peak_fraction()
            ratios.append(spl / conn)
        assert np.mean(ratios) > 1.05
